"""E18: the price of replication -- silent shipping, failover latency.

The replicated journal tier (``repro.serving.replication``) puts an
op-log-shipping layer between the server and its durable journal.  The
headline gate pins what that layer costs when armed but silent: the
identical stamped write stream through a bare sqlite journal (the PR 6
path) and through a ``ReplicatedJournalStore`` with an armed, empty
journal fault plan must stay within <= 5% of each other (alternating
passes, min-of-N on both arms so a noisy box cannot fake a fail in
either direction).

The trajectory rows are the two cold-start paths and the failover
window: opening a server on a replicated journal whose follower is
already caught up (replica-warm -- the post-failover restart path) vs
the PR 6 fresh sqlite replay of the same resident, and
time-to-first-answer across a mid-traffic primary failover (injected
``write_error``, follower promoted, the interrupted write retried).
Not gates -- the CI ``bench-smoke`` job records them as
``BENCH_replication.json`` and ``tools/bench_report.py`` folds them
into ``BENCH_report.md``.  Answers and promotion counters are asserted
along the way, so a row cannot silently measure a primary that never
died.

``REPRO_BENCH_QUICK=1`` shrinks the workloads for the CI smoke job; the
<= 5% ceiling is the acceptance bound either way.
"""

import asyncio
import os

import pytest

from repro.serving import AsyncCertaintyServer, ReplicatedJournalStore
from repro.serving.bench import (
    run_failover_benchmark,
    run_replication_overhead_benchmark,
)
from repro.serving.journal import SqliteJournalStore
from repro.workloads.generators import chain_instance

QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"

OVERHEAD_CEILING = 0.05
NUM_RESIDENTS = 4 if QUICK else 8
N_OPS = 120 if QUICK else 400
PASSES = 5

QUERY = "RXRYRY"
REPETITIONS = 120 if QUICK else 500
FAILOVER_REPETITIONS = 60 if QUICK else 200
NUM_SHARDS = 2


def test_bench_replication_overhead_ceiling():
    """An armed-but-silent replicated journal costs <= 5% over bare sqlite.

    Best of three full comparisons: each already alternates bare and
    replicated passes and takes the per-arm minimum, so one comparison
    surviving under the ceiling is evidence the shipping layer itself
    is cheap (sustained noise can only push the measured overhead
    *up*).  The replica must also end the stream fully caught up with
    zero failovers, or the cheap run measured the wrong thing.
    """
    best = None
    for _pass in range(3):
        report = run_replication_overhead_benchmark(
            num_residents=NUM_RESIDENTS,
            n_ops=N_OPS,
            passes=PASSES,
        )
        assert report["agrees"], "replicated state diverged from bare"
        assert report["failovers"] == 0, report
        if best is None or report["overhead"] < best["overhead"]:
            best = report
        if best["overhead"] <= OVERHEAD_CEILING / 2:
            break
    assert best["overhead"] <= OVERHEAD_CEILING, (
        "expected <= {:.0%} armed-but-silent replication overhead, "
        "measured {:.1%} (bare {:.4f}s vs replicated {:.4f}s over {} "
        "ops)".format(
            OVERHEAD_CEILING,
            best["overhead"],
            best["bare_seconds"],
            best["replicated_seconds"],
            best["ops"],
        )
    )


@pytest.fixture(scope="module")
def resident():
    return chain_instance(QUERY, repetitions=REPETITIONS, conflict_every=3)


@pytest.fixture(scope="module")
def expected(resident):
    async def fresh():
        async with AsyncCertaintyServer(num_shards=NUM_SHARDS) as server:
            await server.register("big", resident)
            return (await server.solve("big", QUERY)).answer

    return asyncio.run(fresh())


def test_bench_replica_warm_cold_start(
    benchmark, tmp_path_factory, resident, expected
):
    """Open a server on a caught-up replicated journal and serve the
    first solve -- the restart path after a failover, where the
    follower was warmed by tailing instead of client re-registration."""
    root = tmp_path_factory.mktemp("replicated")
    seed = ReplicatedJournalStore(
        "sqlite:{}".format(root / "primary.db"),
        ("sqlite:{}".format(root / "follower.db"),),
    )
    seed.register(0, "big", resident, seq=1)
    seed.flush()
    assert all(r["lag"] == 0 for r in seed.health()["replication"]["replicas"])
    seed.close()

    def cold_start():
        async def go():
            async with AsyncCertaintyServer(
                num_shards=NUM_SHARDS,
                journal_store="replicated:sqlite:{0};sqlite:{1}".format(
                    root / "primary.db", root / "follower.db"
                ),
            ) as server:
                assert server.stats()["journal"]["residents"] == 1
                return (await server.solve("big", QUERY)).answer

        assert asyncio.run(go()) is expected

    benchmark.pedantic(cold_start, rounds=3, iterations=1, warmup_rounds=1)


def test_bench_fresh_sqlite_replay(
    benchmark, tmp_path_factory, resident, expected
):
    """The PR 6 baseline: replay the same resident from a bare sqlite
    journal (no shipping layer) and serve the same solve."""
    path = tmp_path_factory.mktemp("bare") / "journal.db"
    seed = SqliteJournalStore(path)
    seed.register(0, "big", resident, seq=1)
    seed.close()

    def cold_start():
        async def go():
            async with AsyncCertaintyServer(
                num_shards=NUM_SHARDS,
                journal_store="sqlite:{}".format(path),
            ) as server:
                assert server.stats()["journal"]["residents"] == 1
                return (await server.solve("big", QUERY)).answer

        assert asyncio.run(go()) is expected

    benchmark.pedantic(cold_start, rounds=3, iterations=1, warmup_rounds=1)


@pytest.mark.parametrize("transport", ["thread", "process"])
def test_bench_failover_time_to_first_answer(benchmark, transport):
    """Record time-to-first-answer across a primary failover, per
    transport.

    Not a gate -- a trajectory row.  Each round builds a fresh server
    on a two-replica sqlite topology, kills the primary store with a
    one-shot ``write_error`` under a mid-traffic delta, and the
    recorded window is that doomed write through the next answered
    read: fault, ship-out, promotion, retried write, re-served
    request.  The promotion counter and injected-fault tally are
    asserted, so the row cannot silently measure a primary that never
    died.
    """

    def failover():
        report = run_failover_benchmark(
            repetitions=FAILOVER_REPETITIONS, transport=transport
        )
        assert report["answers_agree"], "post-failover answers diverged"
        assert report["failovers"] == 1, report
        assert report["injected"] == {"write_error": 1}, report
        assert report["promoted"] == "sqlite", report
        return report["ttfa_seconds"]

    rounds = 2 if QUICK else 3
    benchmark.pedantic(failover, rounds=rounds, iterations=1, warmup_rounds=0)
