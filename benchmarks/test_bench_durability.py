"""E18: durable cold start -- journal replay vs fresh registration.

The durable journal tier (``repro.serving.journal``) lets a reopened
server restore its residents from the sqlite op log instead of asking
clients to re-register.  These rows record what that restore costs on a
large resident: one benchmark opens a server on a pre-populated sqlite
journal and serves the first (cold) solve from replayed state; the
other builds the same server the PR 3 way -- fresh registration of the
same instance -- and serves the same solve.  Both paths pay the same
cold fixpoint, so the difference isolates the replay machinery (log
open, snapshot unpickle, shard seeding).

Not gates -- trajectory rows: the CI ``bench-smoke`` job records them
as ``BENCH_durability.json`` and ``tools/bench_report.py`` folds them
into ``BENCH_report.md``.  Answers are asserted equal along the way, so
the benchmark doubles as a large-instance durability check.

``REPRO_BENCH_QUICK=1`` shrinks the resident for the CI smoke job.
"""

import asyncio
import os

import pytest

from repro.serving import AsyncCertaintyServer
from repro.serving.journal import SqliteJournalStore
from repro.workloads.generators import chain_instance

QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"

QUERY = "RXRYRY"
REPETITIONS = 120 if QUICK else 500
NUM_SHARDS = 2


@pytest.fixture(scope="module")
def resident():
    return chain_instance(QUERY, repetitions=REPETITIONS, conflict_every=3)


@pytest.fixture(scope="module")
def expected(resident):
    async def fresh():
        async with AsyncCertaintyServer(num_shards=NUM_SHARDS) as server:
            await server.register("big", resident)
            return (await server.solve("big", QUERY)).answer

    return asyncio.run(fresh())


def test_bench_cold_start_replay(benchmark, tmp_path_factory, resident, expected):
    """Open a server on a warm sqlite log and serve the first solve."""
    path = tmp_path_factory.mktemp("journal") / "journal.db"
    seed = SqliteJournalStore(path)
    seed.register(0, "big", resident, seq=1)
    seed.close()

    def cold_start():
        async def go():
            async with AsyncCertaintyServer(
                num_shards=NUM_SHARDS,
                journal_store="sqlite:{}".format(path),
            ) as server:
                assert server.stats()["journal"]["residents"] == 1
                return (await server.solve("big", QUERY)).answer

        assert asyncio.run(go()) is expected

    benchmark.pedantic(cold_start, rounds=3, iterations=1, warmup_rounds=1)


def test_bench_fresh_registration(benchmark, resident, expected):
    """The baseline: register the resident and serve the same solve."""

    def fresh_start():
        async def go():
            async with AsyncCertaintyServer(num_shards=NUM_SHARDS) as server:
                await server.register("big", resident)
                return (await server.solve("big", QUERY)).answer

        assert asyncio.run(go()) is expected

    benchmark.pedantic(fresh_start, rounds=3, iterations=1, warmup_rounds=1)
