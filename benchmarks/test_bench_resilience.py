"""E18: the price of resilience -- silent fault hooks, recovery latency.

The ISSUE 7 layer threads two hooks through every batch: the breaker
check plus fault draw at the top of ``execute``, and the deadline check
per op inside the core.  Both must be ~free when nothing fires, or the
resilience tax would be paid by every warm request forever.  The
headline gate pins the armed-but-silent overhead at <= 5% of the clean
shard-warm throughput (measured well under 1%, alternating passes,
min-of-N on both arms so a noisy box cannot fake a fail in either
direction).

The second measurement is the recovery path itself: kill a shard under
a warm resident (a real ``SIGKILL`` on the process child, the seeded
crash emulation on the thread core) and time the next request end to
end -- failure detection, supervised restart, journal replay, re-served
answer.  Not gated (machine-dependent), but recorded via
pytest-benchmark so ``BENCH_resilience.json`` carries the
time-to-first-answer trajectory for ``tools/bench_report.py``.

``REPRO_BENCH_QUICK=1`` shrinks the workloads for the CI smoke job; the
<= 5% ceiling is the acceptance bound either way.
"""

import os

import pytest

from repro.serving.bench import (
    run_fault_overhead_benchmark,
    run_recovery_benchmark,
)

QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"

OVERHEAD_CEILING = 0.05
NUM_INSTANCES = 2 if QUICK else 4
REPETITIONS = 8 if QUICK else 20
N_REQUESTS = 60 if QUICK else 160
PASSES = 3

RECOVERY_REPETITIONS = 60 if QUICK else 200


def test_bench_fault_hook_overhead_ceiling():
    """An armed-but-silent FaultPlan costs <= 5% on the warm stream.

    Best of three full comparisons: each already alternates clean/armed
    passes and takes the per-arm minimum, so one comparison surviving
    under the ceiling is evidence the hook itself is cheap (sustained
    noise can only push the measured overhead *up*).
    """
    best = None
    for _pass in range(3):
        report = run_fault_overhead_benchmark(
            num_shards=2,
            num_instances=NUM_INSTANCES,
            repetitions=REPETITIONS,
            n_requests=N_REQUESTS,
            passes=PASSES,
        )
        assert report["agrees"], "armed answers diverged from clean"
        if best is None or report["overhead"] < best["overhead"]:
            best = report
        if best["overhead"] <= OVERHEAD_CEILING / 2:
            break
    assert best["overhead"] <= OVERHEAD_CEILING, (
        "expected <= {:.0%} armed-but-silent fault-hook overhead, "
        "measured {:.1%} (clean {:.4f}s vs armed {:.4f}s over {} "
        "requests)".format(
            OVERHEAD_CEILING,
            best["overhead"],
            best["clean_seconds"],
            best["armed_seconds"],
            best["requests"],
        )
    )


@pytest.mark.parametrize("transport", ["thread", "process"])
def test_bench_recovery_time_to_first_answer(benchmark, transport):
    """Record time-to-first-answer after a shard crash, per transport.

    Not a gate -- a trajectory row.  Each round builds a fresh worker,
    kills its shard under a warm resident, and the recorded window is
    the next solve: detection + supervised restart + journal replay +
    the re-served answer.  The post-recovery warm solve and the restart
    count are asserted, so the row cannot silently measure a shard that
    never actually died.
    """

    def recover():
        report = run_recovery_benchmark(
            repetitions=RECOVERY_REPETITIONS, transport=transport
        )
        assert report["answers_agree"], "recovered answers diverged"
        assert report["restarts"] == 1, report
        assert report["warm_after_seconds"] < report["recovery_seconds"]
        return report["recovery_seconds"]

    rounds = 2 if QUICK else 3
    benchmark.pedantic(recover, rounds=rounds, iterations=1, warmup_rounds=0)
