"""E17: shard-warm async serving vs per-call solves; transport races.

The serving scenario of the PR 3 subsystem: a resident fleet of
databases behind the :class:`~repro.serving.server.AsyncCertaintyServer`,
receiving a mixed FO / NL-complete / PTIME-complete request stream that
keeps re-asking the same ``(instance, query)`` pairs.  The baseline
answers every request with a per-call solve through a warm plan cache
(PR 1's ``solve_batch``); the serving path answers from each shard's
maintained fixpoint state after one cold solve per distinct pair, and
coalesces identical concurrent requests inside micro-batches.  The
headline assertion pins the serving throughput at >= 2x the per-call
baseline (measured two to three orders of magnitude higher); answers are
verified equal along the stream.

PR 5 adds the **transport race**: the identical CPU-bound
forced-fixpoint stream through thread-per-shard (GIL-serialized) and
process-per-shard (parallel) transports, with the process path pinned at
>= 1.5x on multi-core machines (the gate self-skips on a single core,
where no parallelism dividend exists and only IPC overhead would be
measured).  The per-request round-trip cost of both transports is
recorded via pytest-benchmark, so ``BENCH_serving.json`` carries the
serving trajectory for ``tools/bench_report.py``.

``REPRO_BENCH_QUICK=1`` shrinks the fleet and the stream for the CI
smoke job; the >= 2x / >= 1.5x floors are the acceptance bounds either
way.
"""

import asyncio
import os

import pytest

from repro.serving import AsyncCertaintyServer
from repro.serving.bench import run_serving_benchmark, run_transport_benchmark
from repro.workloads.generators import chain_instance

QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"

try:
    CPUS = len(os.sched_getaffinity(0))
except AttributeError:  # pragma: no cover - non-Linux
    CPUS = os.cpu_count() or 1

SPEEDUP_FLOOR = 2.0
NUM_INSTANCES = 3 if QUICK else 6
REPETITIONS = 12 if QUICK else 40
N_REQUESTS = 90 if QUICK else 240

TRANSPORT_FLOOR = 1.5
CPU_REPETITIONS = 1200 if QUICK else 3000
CPU_REQUESTS = 24 if QUICK else 48


def test_bench_serving_throughput_floor():
    """Shard-warm serving is >= 2x per-call solve_batch (the E17 claim)."""
    # Serving wall time is tiny (tens of microseconds per request), so a
    # scheduler hiccup inside the measured window could sink the ratio;
    # take the best of three passes.  Noise in the (much slower) naive
    # loop only overstates the baseline, which cannot fake a pass.
    best = None
    for _pass in range(3):
        report = run_serving_benchmark(
            num_shards=4,
            num_instances=NUM_INSTANCES,
            repetitions=REPETITIONS,
            n_requests=N_REQUESTS,
        )
        assert report["agrees"], "serving answers diverged from per-call"
        if best is None or report["speedup"] > best["speedup"]:
            best = report
        if best["speedup"] >= 10 * SPEEDUP_FLOOR:
            break
    assert best["speedup"] >= SPEEDUP_FLOOR, (
        "expected >= {}x shard-warm serving speedup, measured {:.1f}x "
        "(per-call {:.4f}s vs serving {:.4f}s over {} requests)".format(
            SPEEDUP_FLOOR,
            best["speedup"],
            best["naive_seconds"],
            best["serving_seconds"],
            best["requests"],
        )
    )


def test_bench_serving_stays_warm():
    """After the warm pass, no shard performs another cold solve."""
    report = run_serving_benchmark(
        num_shards=4,
        num_instances=NUM_INSTANCES,
        repetitions=REPETITIONS,
        n_requests=N_REQUESTS,
    )
    shards = report["server_stats"]["shards"]
    distinct_pairs = NUM_INSTANCES * 3  # every (instance, query) combination
    cold = sum(s["cold_solves"] for s in shards)
    assert cold == distinct_pairs, (
        "expected exactly one cold solve per distinct pair, got {} "
        "(distinct pairs: {})".format(cold, distinct_pairs)
    )
    # Every measured request was served warm -- from the maintained state
    # directly, or by fan-out from a coalesced companion's result.
    warm = sum(s["warm_hits"] for s in shards)
    coalesced = sum(s["coalesced"] for s in shards)
    assert warm + coalesced >= report["requests"]


def test_bench_serving_latency_bound_smoke():
    """max_delay is a *bound*: a lone request is served after at most the
    coalescing window -- the batcher never holds it until the batch fills."""

    async def lone_request():
        async with AsyncCertaintyServer(
            num_shards=1, max_delay=0.05, max_batch=8
        ) as server:
            await server.register(
                "toy", chain_instance("RRX", repetitions=3, conflict_every=3)
            )
            await server.solve("toy", "RRX")  # warm
            loop = asyncio.get_running_loop()
            start = loop.time()
            await server.solve("toy", "RRX")
            return loop.time() - start

    elapsed = asyncio.run(lone_request())
    # The lone request pays at most the 50ms coalescing window plus the
    # (microsecond) warm execution; a batch-full batcher would hang here.
    assert elapsed < 0.5, (
        "lone request exceeded the max-latency bound: {:.3f}s".format(elapsed)
    )


@pytest.mark.skipif(
    CPUS < 2,
    reason="the process-parallelism gate needs >= 2 CPU cores; on one "
    "core both transports serialize and only IPC overhead is measured",
)
def test_bench_transport_process_parallelism_floor():
    """Process-per-shard >= 1.5x thread-per-shard on a CPU-bound stream.

    Every request forces a full Figure 5 kernel run (~8 ms at the
    default size), one large resident pinned per shard.  Threads share
    the GIL, so the stream serializes; processes divide it across
    cores.  Best of three passes, like the warm-serving gate: the
    process path's timed window is sensitive to scheduler noise.
    """
    num_shards = min(4, CPUS)
    best = None
    for _pass in range(3):
        report = run_transport_benchmark(
            num_shards=num_shards,
            repetitions=CPU_REPETITIONS,
            n_requests=CPU_REQUESTS,
        )
        assert report["agrees"], "transport answers diverged"
        if best is None or report["speedup"] > best["speedup"]:
            best = report
        if best["speedup"] >= 2 * TRANSPORT_FLOOR:
            break
    per = best["transports"]
    assert best["speedup"] >= TRANSPORT_FLOOR, (
        "expected >= {}x process-over-thread speedup on {} shards/"
        "{} cores, measured {:.2f}x (thread {:.4f}s vs process {:.4f}s "
        "over {} CPU-bound requests)".format(
            TRANSPORT_FLOOR,
            num_shards,
            CPUS,
            best["speedup"],
            per["thread"]["seconds"],
            per["process"]["seconds"],
            best["requests"],
        )
    )


@pytest.mark.parametrize("transport", ["thread", "process"])
def test_bench_serving_roundtrip_recorded(benchmark, transport):
    """Record the warm per-request round trip of each transport.

    Not a gate -- a trajectory row: pytest-benchmark captures the cost
    of a 16-request warm burst through each transport (thread: queue
    hop; process: queue hop + one pipe message pair), and the CI
    ``bench-smoke`` job folds it into ``BENCH_serving.json`` /
    ``BENCH_report.md``.
    """
    server = AsyncCertaintyServer(
        num_shards=1, transport=transport, max_batch=32, max_delay=0.0
    )
    server.start()

    async def warm():
        await server.register(
            "toy", chain_instance("RRX", repetitions=6, conflict_every=3)
        )
        return (await server.solve("toy", "RRX")).answer

    expected = asyncio.run(warm())

    def burst():
        async def go():
            results = await server.solve_many([("toy", "RRX")] * 16)
            assert all(r.answer is expected for r in results)

        asyncio.run(go())

    try:
        benchmark.pedantic(burst, rounds=10, iterations=1, warmup_rounds=1)
    finally:
        server.close()
