"""E17: shard-warm async serving vs per-call solves.

The serving scenario of the PR 3 subsystem: a resident fleet of
databases behind the :class:`~repro.serving.server.AsyncCertaintyServer`,
receiving a mixed FO / NL-complete / PTIME-complete request stream that
keeps re-asking the same ``(instance, query)`` pairs.  The baseline
answers every request with a per-call solve through a warm plan cache
(PR 1's ``solve_batch``); the serving path answers from each shard's
maintained fixpoint state after one cold solve per distinct pair, and
coalesces identical concurrent requests inside micro-batches.  The
headline assertion pins the serving throughput at >= 2x the per-call
baseline (measured two to three orders of magnitude higher); answers are
verified equal along the stream.

``REPRO_BENCH_QUICK=1`` shrinks the fleet and the stream for the CI
smoke job; the >= 2x floor is the acceptance bound either way.
"""

import asyncio
import os

from repro.serving import AsyncCertaintyServer
from repro.serving.bench import run_serving_benchmark
from repro.workloads.generators import chain_instance

QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"

SPEEDUP_FLOOR = 2.0
NUM_INSTANCES = 3 if QUICK else 6
REPETITIONS = 12 if QUICK else 40
N_REQUESTS = 90 if QUICK else 240


def test_bench_serving_throughput_floor():
    """Shard-warm serving is >= 2x per-call solve_batch (the E17 claim)."""
    # Serving wall time is tiny (tens of microseconds per request), so a
    # scheduler hiccup inside the measured window could sink the ratio;
    # take the best of three passes.  Noise in the (much slower) naive
    # loop only overstates the baseline, which cannot fake a pass.
    best = None
    for _pass in range(3):
        report = run_serving_benchmark(
            num_shards=4,
            num_instances=NUM_INSTANCES,
            repetitions=REPETITIONS,
            n_requests=N_REQUESTS,
        )
        assert report["agrees"], "serving answers diverged from per-call"
        if best is None or report["speedup"] > best["speedup"]:
            best = report
        if best["speedup"] >= 10 * SPEEDUP_FLOOR:
            break
    assert best["speedup"] >= SPEEDUP_FLOOR, (
        "expected >= {}x shard-warm serving speedup, measured {:.1f}x "
        "(per-call {:.4f}s vs serving {:.4f}s over {} requests)".format(
            SPEEDUP_FLOOR,
            best["speedup"],
            best["naive_seconds"],
            best["serving_seconds"],
            best["requests"],
        )
    )


def test_bench_serving_stays_warm():
    """After the warm pass, no shard performs another cold solve."""
    report = run_serving_benchmark(
        num_shards=4,
        num_instances=NUM_INSTANCES,
        repetitions=REPETITIONS,
        n_requests=N_REQUESTS,
    )
    shards = report["server_stats"]["shards"]
    distinct_pairs = NUM_INSTANCES * 3  # every (instance, query) combination
    cold = sum(s["cold_solves"] for s in shards)
    assert cold == distinct_pairs, (
        "expected exactly one cold solve per distinct pair, got {} "
        "(distinct pairs: {})".format(cold, distinct_pairs)
    )
    # Every measured request was served warm -- from the maintained state
    # directly, or by fan-out from a coalesced companion's result.
    warm = sum(s["warm_hits"] for s in shards)
    coalesced = sum(s["coalesced"] for s in shards)
    assert warm + coalesced >= report["requests"]


def test_bench_serving_latency_bound_smoke():
    """max_delay is a *bound*: a lone request is served after at most the
    coalescing window -- the batcher never holds it until the batch fills."""

    async def lone_request():
        async with AsyncCertaintyServer(
            num_shards=1, max_delay=0.05, max_batch=8
        ) as server:
            await server.register(
                "toy", chain_instance("RRX", repetitions=3, conflict_every=3)
            )
            await server.solve("toy", "RRX")  # warm
            loop = asyncio.get_running_loop()
            start = loop.time()
            await server.solve("toy", "RRX")
            return loop.time() - start

    elapsed = asyncio.run(lone_request())
    # The lone request pays at most the 50ms coalescing window plus the
    # (microsecond) warm execution; a batch-full batcher would hang here.
    assert elapsed < 0.5, (
        "lone request exceeded the max-latency bound: {:.3f}s".format(elapsed)
    )
