"""E13: generalized path queries (Section 8, Theorems 4-5).

Benchmarks the constant-aware pipeline: segment checks (Lemma 27) plus
the ext(q) reduction (Lemmas 26/29), against brute force on small
instances for correctness.
"""

import pytest

from repro.db.repairs import count_repairs
from repro.queries.generalized import GeneralizedPathQuery
from repro.solvers.brute_force import certain_answer_brute_force
from repro.solvers.generalized_solver import certain_answer_generalized
from repro.workloads.generators import planted_instance

from conftest import seeded


def constant_query(word: str):
    """Pin the final node of *word* to the constant 0."""
    return GeneralizedPathQuery(word, {len(word): 0})


@pytest.mark.parametrize("word", ["RR", "RRX", "RXRY"])
@pytest.mark.parametrize("n_facts", [40, 160])
def test_bench_e13_terminal_constant(benchmark, word, n_facts):
    rng = seeded(n_facts + len(word))
    db = planted_instance(
        rng, word, n_constants=max(6, n_facts // 8),
        n_paths=n_facts // (4 * len(word)) + 1,
        n_noise_facts=n_facts // 2, conflict_rate=0.4,
    )
    query = constant_query(word)
    result = benchmark(certain_answer_generalized, db, query)
    if count_repairs(db) <= 5000:
        assert result.answer == certain_answer_brute_force(db, query).answer


def test_bench_e13_example8_shape(benchmark):
    """The Example 8 query R(x,y), S(y,0), T(0,1), R(1,w) at scale."""
    rng = seeded(8)
    base = planted_instance(
        rng, "RS", n_constants=20, n_paths=10, n_noise_facts=60,
        conflict_rate=0.4,
    )
    db = base.with_facts(
        [
            fact
            for fact in planted_instance(
                rng, "TR", n_constants=20, n_paths=5, n_noise_facts=20,
                conflict_rate=0.4,
            ).facts
        ]
    )
    query = GeneralizedPathQuery(["R", "S", "T", "R"], {2: 0, 3: 1})
    result = benchmark(certain_answer_generalized, db, query)
    assert result.answer in (True, False)
