"""E15: the compile-once certainty engine on repeated-query workloads.

The serving scenario of the engine refactor: a fixed query set against a
stream of small databases.  Per-call ``certain_answer`` historically paid
the Theorem 3 classification and the solver-internal condition checks on
every call; the engine compiles each query once and dispatches instances
through the cached plan.  The headline assertion is the >= 5x speedup of
the batched engine over the per-call baseline (kept measurable as
``per_call_reference``), with answers verified equal.

``REPRO_BENCH_QUICK=1`` shrinks the workload for the CI smoke job (the
speedup floor drops to 2x there: tiny samples on shared runners are
noisy; the full benchmark asserts the real bound).
"""

import os
import random

import pytest

from repro.engine import CertaintyEngine, CompiledQuery
from repro.experiments.harness import per_call_reference, throughput_comparison
from repro.solvers.brute_force import certain_answer_brute_force
from repro.workloads.generators import chain_instance, random_instance

QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"

#: The repeated-query workload: one query per dispatch route where the
#: per-query work (classification, condition checks) dominates per-call
#: cost on small instances.  FO, PTIME-complete, coNP-complete x2.
WORKLOAD_QUERIES = ["RXRXRXRX", "RXRYRYRY", "RRXRRXRRX", "RRSRSRRSRSRS"]

SPEEDUP_FLOOR = 2.0 if QUICK else 5.0
N_INSTANCES = 12 if QUICK else 40
REPEATS = 2 if QUICK else 3


def _instances(n):
    rng = random.Random(0xE15)
    return [
        random_instance(
            rng, 8, 14, alphabet=("R", "S", "X", "Y"), conflict_rate=0.5
        )
        for _ in range(n)
    ]


def test_bench_engine_batch_speedup():
    """Compile-once batching is >= 5x per-call dispatch (the E15 claim)."""
    report = throughput_comparison(
        WORKLOAD_QUERIES, _instances(N_INSTANCES), repeats=REPEATS
    )
    assert report["agrees"], "engine answers diverged from the baseline"
    assert report["speedup"] >= SPEEDUP_FLOOR, (
        "expected >= {}x compile-once speedup, measured {:.1f}x "
        "({} pairs: per-call {:.4f}s vs engine {:.4f}s)".format(
            SPEEDUP_FLOOR,
            report["speedup"],
            report["pairs"],
            report["per_call_seconds"],
            report["engine_seconds"],
        )
    )


def test_bench_engine_smoke_correctness():
    """Smoke: the batched engine matches brute force on a small workload."""
    rng = random.Random(0x57E)
    engine = CertaintyEngine()
    pairs = []
    for query in ["RXRX", "RRX", "RXRYRY", "ARRX"]:
        for _ in range(3 if QUICK else 6):
            pairs.append(
                (random_instance(rng, 4, 8, sorted(set(query)), 0.5), query)
            )
    results = engine.solve_batch(pairs)
    for (db, query), result in zip(pairs, results):
        assert result.answer == certain_answer_brute_force(db, query).answer
    assert engine.stats.solves == len(pairs)
    assert engine.stats.compiles == 4


@pytest.mark.parametrize("query", WORKLOAD_QUERIES)
def test_bench_engine_compile(benchmark, query):
    """Per-query compilation cost (paid once per plan-cache entry)."""
    plan = benchmark(CompiledQuery, query)
    assert plan.word == query


@pytest.mark.parametrize("query", WORKLOAD_QUERIES)
def test_bench_engine_cached_solve(benchmark, query):
    """Per-instance cost through a warm plan cache."""
    engine = CertaintyEngine()
    db = _instances(1)[0]
    expected = per_call_reference(db, query).answer
    result = benchmark(engine.solve, db, query)
    assert result.answer == expected


def test_bench_engine_chain_scaling(benchmark):
    """Engine batch over growing chains; answers pinned to the baseline."""
    reps = 6 if QUICK else 12
    dbs = [
        chain_instance("RRX", repetitions=r, conflict_every=3)
        for r in range(2, reps)
    ]
    engine = CertaintyEngine()
    pairs = [(db, "RRX") for db in dbs]
    results = benchmark(engine.solve_batch, pairs)
    for db, result in zip(dbs, results):
        assert result.answer == per_call_reference(db, "RRX").answer
