"""E16: incremental certainty under fact updates.

The serving scenario of the incremental layer: a long-lived database
receiving a stream of single-fact updates, each followed by a CERTAINTY
decision.  The from-scratch baseline re-runs the per-instance solve on
every update (plan cache warm -- the PR 1 engine); the incremental path
folds the delta into the maintained
:class:`~repro.solvers.fixpoint.FixpointState` via ``solve_delta``.  The
headline assertion is the >= 5x speedup on NL and PTIME workloads, with
answers verified equal along the stream.

``REPRO_BENCH_QUICK=1`` shrinks the stream for the CI smoke job (floor
2x there: tiny samples on shared runners are noisy; the full benchmark
asserts the real bound).
"""

import os
import time

import pytest

from repro.db.delta import Delta, DeltaInstance
from repro.db.facts import Fact
from repro.engine import CertaintyEngine
from repro.workloads.generators import chain_instance

QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"

SPEEDUP_FLOOR = 2.0 if QUICK else 5.0
REPETITIONS = 40 if QUICK else 120
N_UPDATES = 20 if QUICK else 60

#: One query per incremental dispatch route asserted by the E16 claim.
WORKLOADS = [
    ("RRX", "NL-complete"),
    ("RXRYRY", "PTIME-complete"),
]


def _update_stream(query, repetitions, n_updates):
    """A chained stream of (base, delta, updated) single-fact updates.

    Updates alternate between inserting a conflicting dead-end branch at
    a fresh position of the chain and removing the branch again, so the
    database size stays bounded while every update touches a different
    block.
    """
    db = chain_instance(query, repetitions=repetitions, conflict_every=4)
    n_nodes = repetitions * len(query)
    steps = []
    for i in range(n_updates):
        position = (7 * i) % (n_nodes - 1)
        branch = Fact(query[position % len(query)], position, n_nodes + 100 + i)
        delta = (
            Delta.inserting(branch) if i % 2 == 0 else Delta.removing(branch)
        )
        if i % 2 == 1:
            # Remove the branch inserted by the previous step.
            prev = steps[-1][1].inserts[0]
            delta = Delta.removing(prev)
        updated = delta.apply_to(db).commit()
        steps.append((db, delta, updated))
        db = updated
    return steps


@pytest.mark.parametrize("query,complexity", WORKLOADS)
def test_bench_e16_single_fact_update_speedup(query, complexity):
    """solve_delta is >= 5x a warm from-scratch solve per single-fact update."""
    steps = _update_stream(query, REPETITIONS, N_UPDATES)

    # The incremental stream finishes in microseconds per update, so a
    # single scheduler hiccup inside its timing window can sink the
    # measured ratio.  Timing noise only ever *adds* seconds, so the
    # minimum over a few passes (each on a fresh engine, replaying the
    # identical stream) is a robust estimate; the slower scratch loop is
    # timed once -- noise there only overstates it, which cannot produce
    # a false failure.
    incremental_seconds = float("inf")
    for _pass in range(3):
        incremental = CertaintyEngine()
        assert str(incremental.compile(query).complexity) == complexity
        # Warm the maintained state (the first sight is a full solve).
        incremental.solve_delta(steps[0][0], Delta(), query)
        start = time.perf_counter()
        incremental_results = [
            incremental.solve_delta(base, delta, query)
            for base, delta, _updated in steps
        ]
        incremental_seconds = min(
            incremental_seconds, time.perf_counter() - start
        )
        assert incremental.stats.incremental_hits == len(steps)

    scratch = CertaintyEngine()
    scratch.compile(query)  # warm the plan cache: compile-once is PR 1's win
    start = time.perf_counter()
    scratch_results = [
        scratch.solve(updated, query) for _base, _delta, updated in steps
    ]
    scratch_seconds = time.perf_counter() - start

    answers_inc = [r.answer for r in incremental_results]
    answers_scr = [r.answer for r in scratch_results]
    assert answers_inc == answers_scr, "incremental diverged from scratch"

    speedup = scratch_seconds / incremental_seconds
    assert speedup >= SPEEDUP_FLOOR, (
        "expected >= {}x single-fact-update speedup on {} ({}), measured "
        "{:.1f}x (scratch {:.4f}s vs incremental {:.4f}s over {} updates)".format(
            SPEEDUP_FLOOR,
            query,
            complexity,
            speedup,
            scratch_seconds,
            incremental_seconds,
            len(steps),
        )
    )


@pytest.mark.parametrize("query,_complexity", WORKLOADS)
def test_bench_e16_solve_delta(benchmark, query, _complexity):
    """Per-update cost of solve_delta through a maintained state."""
    db = chain_instance(query, repetitions=REPETITIONS, conflict_every=4)
    engine = CertaintyEngine()
    engine.solve_delta(db, Delta(), query)
    n_nodes = REPETITIONS * len(query)
    branch = Fact(query[0], n_nodes // 2, n_nodes + 999)
    state = {"db": db, "insert": True}

    def update_once():
        delta = (
            Delta.inserting(branch)
            if state["insert"]
            else Delta.removing(branch)
        )
        result = engine.solve_delta(state["db"], delta, query)
        state["db"] = delta.apply_to(state["db"]).commit()
        state["insert"] = not state["insert"]
        return result

    result = benchmark(update_once)
    assert result.method == "fixpoint-incremental"


def test_bench_e16_overlay_commit(benchmark):
    """O(delta) commit: patching one block of a large instance."""
    db = chain_instance("RRX", repetitions=REPETITIONS, conflict_every=4)
    fact = Fact("R", 3, 10 ** 6)

    def commit_once():
        overlay = DeltaInstance(db)
        overlay.insert_fact(fact)
        return overlay.commit()

    committed = benchmark(commit_once)
    assert fact in committed
    assert len(committed) == len(db) + 1


def test_bench_e16_streaming_batch():
    """solve_batch_iter yields early: first result before the batch ends."""
    dbs = [
        chain_instance("RRX", repetitions=r, conflict_every=3)
        for r in range(2, 10)
    ]
    engine = CertaintyEngine()
    expected = [engine.solve(db, "RRX").answer for db in dbs]
    iterator = engine.solve_batch_iter([(db, "RRX") for db in dbs])
    solves_before = engine.stats.solves
    first_index, first = next(iterator)
    assert first_index == 0
    assert engine.stats.solves == solves_before + 1  # streamed, not collected
    rest = list(iterator)
    answers = [first.answer] + [r.answer for _i, r in rest]
    assert answers == expected
