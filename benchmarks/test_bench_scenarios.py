"""Scenario-matrix cells as benchmarks: verified work per unit time.

Each benchmark runs one representative cell of the scenario matrix
(:mod:`repro.scenarios`) -- a seeded instance family through a real
execution path -- and records the wall time alongside the differential
verification counts in ``extra_info``, so ``BENCH_scenarios.json``
carries both the performance trajectory *and* the evidence that every
answered request was re-decided by the independent oracle
(``tools/bench_report.py`` surfaces the ``verified m/n`` note per row).

A cell that answers nothing, mismatches the oracle, or diverges from
the client-side replay fails the benchmark -- timing a wrong answer is
worse than no benchmark at all.

``REPRO_BENCH_QUICK=1`` (the CI smoke job) keeps the quick scale and
skips the serve-process cell, whose subprocess cold start would dwarf
the measured work.
"""

import os

import pytest

from repro.scenarios import default_chaos_spec, run_cell

QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"
SCALE = "quick" if QUICK else "full"

CELLS = [
    ("paper", "batch", False),
    ("random", "stream", False),
    ("gadget", "batch", False),
    ("firehose", "stream", False),
    ("planted", "serve-thread", False),
    ("random", "serve-thread", True),  # chaos-armed serving cell
]
if not QUICK:
    CELLS.append(("paper", "serve-process", False))


@pytest.mark.parametrize(
    "family,mode,chaos",
    CELLS,
    ids=["{}:{}{}".format(f, m, "+chaos" if c else "") for f, m, c in CELLS],
)
def test_bench_scenario_cell(benchmark, family, mode, chaos):
    spec = default_chaos_spec(7) if chaos else None
    records = []

    def run():
        records.append(
            run_cell(family, mode, seed=7, scale=SCALE, chaos=spec)
        )
        return records[-1]

    benchmark.pedantic(run, rounds=1, iterations=1)
    record = records[-1]
    assert record.answered > 0
    assert record.verified == record.answered
    assert record.mismatches == []
    assert record.final_ok is not False
    benchmark.extra_info.update(
        {
            "family": record.family,
            "mode": record.mode,
            "seed": record.seed,
            "scale": record.scale,
            "chaos": record.chaos,
            "requests": record.requests,
            "answered": record.answered,
            "verified": record.verified,
            "routes": dict(record.route_mix),
            "notes": "verified {}/{}".format(
                record.verified, record.answered
            ),
        }
    )
