"""The update path end-to-end: four legs, four pinned speedups.

One benchmark per leg of the fast update path, each differential (the
fast leg must produce the same answers as its baseline) and each gated:

* **compact resume** -- :class:`CompactDatalogState.resume` (retained
  int-tuple materialization, semi-naive reseed) >= 2x the object-level
  :class:`DatalogState.resume` on the same insert stream;
* **incremental SAT** -- assumption-keyed clause-group reuse
  (:class:`IncrementalSatContext.apply_delta` + ``solve``) >= 2x
  rebuilding the context from scratch on every step;
* **generalized maintenance** -- ``solve_delta`` on a Section 8
  constant-carrying query through the maintained
  :class:`~repro.solvers.generalized_solver.GeneralizedState` >= 5x a
  warm full re-solve per update;
* **shm snapshots** -- registering a large resident on a
  :class:`ProcessTransport` via shared-memory segments >= 1.5x the
  pickled-frame path.

``REPRO_BENCH_QUICK=1`` shrinks streams and relaxes floors for the CI
smoke job (small samples on shared runners are noisy; the full
benchmark asserts the real bounds).  CI records the timings as
``BENCH_update_path.json``; ``tools/bench_report.py`` folds them into
``BENCH_report.md``.
"""

import os
import random
import time

import pytest

from repro.datalog.cqa_program import (
    ADOM,
    build_cqa_program,
    instance_to_edb,
    rel,
)
from repro.datalog.engine import (
    CompactDatalogState,
    DatalogState,
    compact_program,
)
from repro.db.delta import Delta, DeltaInstance
from repro.db.facts import Fact
from repro.db.instance import DatabaseInstance
from repro.engine import CertaintyEngine
from repro.queries.generalized import GeneralizedPathQuery
from repro.serving import ShardRequest
from repro.serving.transport import ProcessTransport
from repro.solvers.sat_encoding import IncrementalSatContext
from repro.workloads.generators import (
    chain_instance,
    hardness_gadget_instance,
)

QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"

#: Full-mode floors are the PR's acceptance gates; quick mode relaxes
#: them for noisy shared runners, as the other benchmark suites do.
RESUME_FLOOR = 1.5 if QUICK else 2.0
SAT_FLOOR = 1.5 if QUICK else 2.0
GENERALIZED_FLOOR = 2.0 if QUICK else 5.0
SHM_FLOOR = 1.2 if QUICK else 1.5

RESUME_REPETITIONS = 40 if QUICK else 120
RESUME_UPDATES = 20 if QUICK else 60
SAT_BRANCHES = 8 if QUICK else 16
SAT_UPDATES = 12 if QUICK else 30
GEN_REPETITIONS = 30 if QUICK else 60
GEN_UPDATES = 16 if QUICK else 40
SHM_FACTS = 15_000 if QUICK else 60_000
SHM_CONSTANTS = 800 if QUICK else 2_000
SHM_REGISTRATIONS = 2 if QUICK else 3

#: Timing-noise discipline shared with ``test_bench_incremental``: the
#: fast leg is the minimum over this many identical passes (noise only
#: adds seconds); the slow baseline is timed once (noise there only
#: overstates it, which cannot produce a false failure).
PASSES = 3


# ----------------------------------------------------------------------
# Leg 1: compact semi-naive resume vs object-level resume
# ----------------------------------------------------------------------


def _resume_stream(query, repetitions, n_updates):
    """An insert-only EDB delta stream over a conflicted chain."""
    db = chain_instance(query, repetitions=repetitions, conflict_every=4)
    n_nodes = repetitions * len(query)
    deltas = []
    for i in range(n_updates):
        position = (7 * i) % (n_nodes - 1)
        fact = Fact(
            query[position % len(query)], position, n_nodes + 100 + i
        )
        deltas.append(
            {
                rel(fact.relation): [(fact.key, fact.value)],
                ADOM: [(fact.key,), (fact.value,)],
            }
        )
    return db, deltas


def test_bench_compact_resume_speedup():
    """CompactDatalogState.resume >= 2x DatalogState.resume."""
    query = "RRX"
    cqa = build_cqa_program(query)
    db, deltas = _resume_stream(query, RESUME_REPETITIONS, RESUME_UPDATES)
    edb = instance_to_edb(db)
    compiled = compact_program(cqa.program)
    intern = compiled.interner.constant_id
    edb_int = {
        predicate: [tuple(intern(v) for v in row) for row in rows]
        for predicate, rows in edb.items()
    }
    deltas_int = [
        {
            predicate: [tuple(intern(v) for v in row) for row in rows]
            for predicate, rows in delta.items()
        }
        for delta in deltas
    ]

    compact_seconds = float("inf")
    for _pass in range(PASSES):
        compact = CompactDatalogState.evaluate(compiled, edb_int)
        start = time.perf_counter()
        for delta in deltas_int:
            compact.resume(delta)
        compact_seconds = min(
            compact_seconds, time.perf_counter() - start
        )

    obj = DatalogState.evaluate(cqa.program, edb)
    start = time.perf_counter()
    for delta in deltas:
        obj.resume(delta)
    object_seconds = time.perf_counter() - start

    # Differential: the final materializations agree.
    decode = compiled.interner.constant
    decoded = {
        predicate: {tuple(decode(v) for v in row) for row in rows}
        for predicate, rows in compact.store.relations.items()
        if rows
    }
    materialized = {
        predicate: set(map(tuple, rows))
        for predicate, rows in obj.relations.items()
        if rows
    }
    assert decoded == materialized

    speedup = object_seconds / compact_seconds
    assert speedup >= RESUME_FLOOR, (
        "expected >= {}x compact resume speedup, measured {:.1f}x "
        "(object {:.4f}s vs compact {:.4f}s over {} inserts)".format(
            RESUME_FLOOR,
            speedup,
            object_seconds,
            compact_seconds,
            len(deltas),
        )
    )


# ----------------------------------------------------------------------
# Leg 2: incremental SAT under assumptions vs rebuild-from-scratch
# ----------------------------------------------------------------------


def _sat_stream(rng, db, n_updates):
    """Single-fact inserts riding on a coNP hardness gadget."""
    steps = []
    current = db
    for i in range(n_updates):
        overlay = DeltaInstance(current)
        overlay.insert_fact(
            Fact(rng.choice("ARX"), "n{}".format(i), "m{}".format(i))
        )
        new_db = overlay.commit()
        steps.append(
            (new_db, list(overlay.added_facts), list(overlay.removed_facts))
        )
        current = new_db
    return steps


def test_bench_incremental_sat_speedup():
    """Assumption reuse >= 2x re-encoding the CNF on every delta."""
    rng = random.Random(0xBE7)
    db = hardness_gadget_instance(rng, SAT_BRANCHES, 0, query="ARRX")
    steps = _sat_stream(rng, db, SAT_UPDATES)

    incremental_seconds = float("inf")
    for _pass in range(PASSES):
        ctx = IncrementalSatContext(db, "ARRX")
        ctx.solve()  # load the base encoding outside the timed window
        answers_incremental = []
        start = time.perf_counter()
        for new_db, added, removed in steps:
            ctx.apply_delta(new_db, added, removed)
            answers_incremental.append(ctx.solve().answer)
        incremental_seconds = min(
            incremental_seconds, time.perf_counter() - start
        )
    assert ctx.last_reused > 0  # the chain genuinely reused groups

    start = time.perf_counter()
    answers_rebuild = [
        IncrementalSatContext(new_db, "ARRX").solve().answer
        for new_db, _added, _removed in steps
    ]
    rebuild_seconds = time.perf_counter() - start

    assert answers_incremental == answers_rebuild

    speedup = rebuild_seconds / incremental_seconds
    assert speedup >= SAT_FLOOR, (
        "expected >= {}x incremental-SAT speedup, measured {:.1f}x "
        "(rebuild {:.4f}s vs incremental {:.4f}s over {} deltas)".format(
            SAT_FLOOR,
            speedup,
            rebuild_seconds,
            incremental_seconds,
            len(steps),
        )
    )


# ----------------------------------------------------------------------
# Leg 3: generalized-query maintenance vs warm full re-solve
# ----------------------------------------------------------------------


def _generalized_stream(query, repetitions, n_updates):
    """Alternating insert/remove single-fact updates on a chain."""
    db = chain_instance(query, repetitions=repetitions, conflict_every=4)
    n_nodes = repetitions * len(query)
    steps = []
    current = db
    for i in range(n_updates):
        position = (7 * i) % (n_nodes - 1)
        branch = Fact(
            query[position % len(query)], position, n_nodes + 100 + i
        )
        delta = (
            Delta.inserting(branch)
            if i % 2 == 0
            else Delta.removing(steps[-1][1].inserts[0])
        )
        updated = delta.apply_to(current).commit()
        steps.append((current, delta, updated))
        current = updated
    return db, steps


def test_bench_generalized_delta_speedup():
    """Generalized solve_delta >= 5x a warm full re-solve per update."""
    query = "RXRYRY"
    db, steps = _generalized_stream(query, GEN_REPETITIONS, GEN_UPDATES)
    # Terminal constant pins char(q) = the whole word: the decision
    # rides the maintained ext(q) fixpoint, the Lemma 29 route.
    gq = GeneralizedPathQuery(
        query, {len(query): GEN_REPETITIONS * len(query) // 2}
    )

    incremental_seconds = float("inf")
    for _pass in range(PASSES):
        incremental = CertaintyEngine()
        incremental.solve_delta(steps[0][0], Delta(), gq)  # warm state
        start = time.perf_counter()
        results_incremental = [
            incremental.solve_delta(base, delta, gq)
            for base, delta, _updated in steps
        ]
        incremental_seconds = min(
            incremental_seconds, time.perf_counter() - start
        )
    assert incremental.stats.incremental_hits >= len(steps)

    full = CertaintyEngine()
    full.solve(steps[0][0], gq)  # warm the compiled plan
    start = time.perf_counter()
    results_full = [
        full.solve(updated, gq) for _base, _delta, updated in steps
    ]
    full_seconds = time.perf_counter() - start

    assert [r.answer for r in results_incremental] == [
        r.answer for r in results_full
    ]

    speedup = full_seconds / incremental_seconds
    assert speedup >= GENERALIZED_FLOOR, (
        "expected >= {}x generalized delta speedup, measured {:.1f}x "
        "(full {:.4f}s vs incremental {:.4f}s over {} updates)".format(
            GENERALIZED_FLOOR,
            speedup,
            full_seconds,
            incremental_seconds,
            len(steps),
        )
    )


# ----------------------------------------------------------------------
# Leg 4: shared-memory snapshot shipping vs pickled frames
# ----------------------------------------------------------------------


def _large_resident():
    """A dense random graph over *string* constants.

    Shm shipping pays off where the pickled frame is fat: repeated
    symbolic constants, many facts per block.  The flat-int stream
    ships each string once in the symbol tables and pure ints after
    (~3x smaller frames than pickle on this shape).
    """
    rng = random.Random(3)
    constants = ["n{:05d}".format(i) for i in range(SHM_CONSTANTS)]
    triples = set()
    while len(triples) < SHM_FACTS:
        triples.add(
            ("RX"[rng.random() < 0.5], rng.choice(constants),
             rng.choice(constants))
        )
    return DatabaseInstance.from_triples(sorted(triples))


def test_bench_shm_snapshot_speedup():
    """shm registration >= 1.5x the pickled-frame path, same answers."""
    db = _large_resident()

    def measure(shm_threshold):
        transport = ProcessTransport(0, shm_threshold=shm_threshold)
        transport.start()
        try:
            # Warm the child (interpreter import + first-batch costs).
            warm = ShardRequest(
                "register",
                name="warm",
                db=chain_instance("RRX", repetitions=2),
            )
            transport.execute([warm])
            assert warm.error is None
            best = float("inf")
            for _pass in range(PASSES):
                start = time.perf_counter()
                for i in range(SHM_REGISTRATIONS):
                    request = ShardRequest(
                        "register", name="big{}".format(i), db=db
                    )
                    transport.execute([request])
                    assert request.error is None
                best = min(best, time.perf_counter() - start)
            solve = ShardRequest("solve", name="big0", query="RX")
            transport.execute([solve])
            health = transport.health()
            return best, solve.result.answer, health
        finally:
            transport.stop()

    shm_seconds, shm_answer, shm_health = measure(0)
    pickle_seconds, pickle_answer, pickle_health = measure(None)

    assert shm_answer == pickle_answer
    assert shm_health["snapshot_shm"] > 0
    assert pickle_health["snapshot_shm"] == 0

    speedup = pickle_seconds / shm_seconds
    assert speedup >= SHM_FLOOR, (
        "expected >= {}x shm registration speedup, measured {:.1f}x "
        "(pickle {:.4f}s vs shm {:.4f}s for {} registrations of {} "
        "facts)".format(
            SHM_FLOOR,
            speedup,
            pickle_seconds,
            shm_seconds,
            SHM_REGISTRATIONS,
            len(db.facts),
        )
    )


# ----------------------------------------------------------------------
# Recorded per-operation timings (pytest-benchmark, BENCH_update_path)
# ----------------------------------------------------------------------


def test_bench_compact_resume_per_insert(benchmark):
    query = "RRX"
    cqa = build_cqa_program(query)
    db, deltas = _resume_stream(query, RESUME_REPETITIONS, RESUME_UPDATES)
    compiled = compact_program(cqa.program)
    intern = compiled.interner.constant_id
    edb_int = {
        predicate: [
            tuple(intern(v) for v in row) for row in rows
        ]
        for predicate, rows in instance_to_edb(db).items()
    }
    state = CompactDatalogState.evaluate(compiled, edb_int)
    deltas_int = [
        {
            predicate: [tuple(intern(v) for v in row) for row in rows]
            for predicate, rows in delta.items()
        }
        for delta in deltas
    ]
    cursor = {"i": 0}

    def resume_once():
        delta = deltas_int[cursor["i"] % len(deltas_int)]
        cursor["i"] += 1
        return state.resume(delta)

    relations = benchmark(resume_once)
    assert relations


def test_bench_incremental_sat_per_delta(benchmark):
    rng = random.Random(0xBE7)
    db = hardness_gadget_instance(rng, SAT_BRANCHES, 0, query="ARRX")
    steps = _sat_stream(rng, db, SAT_UPDATES)
    ctx = IncrementalSatContext(db, "ARRX")
    ctx.solve()
    cursor = {"i": 0}

    def delta_solve_once():
        new_db, added, removed = steps[cursor["i"] % len(steps)]
        cursor["i"] += 1
        if cursor["i"] <= len(steps):
            ctx.apply_delta(new_db, added, removed)
        return ctx.solve()

    result = benchmark(delta_solve_once)
    assert result.answer is not None


def test_bench_generalized_delta_per_update(benchmark):
    query = "RXRYRY"
    _db, steps = _generalized_stream(query, GEN_REPETITIONS, GEN_UPDATES)
    gq = GeneralizedPathQuery(
        query, {len(query): GEN_REPETITIONS * len(query) // 2}
    )
    engine = CertaintyEngine()
    engine.solve_delta(steps[0][0], Delta(), gq)
    cursor = {"i": 0}

    def update_once():
        base, delta, _updated = steps[cursor["i"] % len(steps)]
        cursor["i"] += 1
        return engine.solve_delta(base, delta, gq)

    result = benchmark(update_once)
    assert result.method == "generalized"
