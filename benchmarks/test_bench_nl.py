"""E7: the linear-Datalog NL solver (Lemma 14).

Measures program generation (per query, cached in production use) and
evaluation scaling; asserts agreement with the fixpoint algorithm, the
cross-check that the generated Claim 5 programs are faithful.
"""

import pytest

from repro.datalog.cqa_program import build_cqa_program
from repro.solvers.fixpoint import certain_answer_fixpoint
from repro.solvers.nl_solver import certain_answer_nl
from repro.workloads.generators import chain_instance, planted_instance

from conftest import seeded

NL_QUERIES = ["RRX", "RXRY", "UVUVWV"]


@pytest.mark.parametrize("query", NL_QUERIES)
def test_bench_e7_program_generation(benchmark, query):
    program = benchmark(build_cqa_program, query)
    assert len(program.program) > 0


@pytest.mark.parametrize("query", NL_QUERIES)
@pytest.mark.parametrize("n_facts", [40, 160])
def test_bench_e7_nl_evaluation(benchmark, query, n_facts):
    rng = seeded(n_facts * 13 + len(query))
    db = planted_instance(
        rng, query, n_constants=max(6, n_facts // 8),
        n_paths=n_facts // (4 * len(query)) + 1,
        n_noise_facts=n_facts // 2, conflict_rate=0.4,
    )
    result = benchmark(certain_answer_nl, db, query)
    assert result.answer == certain_answer_fixpoint(db, query).answer


@pytest.mark.parametrize("repetitions", [10, 40])
def test_bench_e7_nl_chain(benchmark, repetitions):
    db = chain_instance("RRX", repetitions=repetitions, conflict_every=4)
    result = benchmark(certain_answer_nl, db, "RRX")
    assert result.answer == certain_answer_fixpoint(db, "RRX").answer
