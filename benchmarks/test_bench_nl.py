"""E7: the linear-Datalog NL solver (Lemma 14).

Measures program generation (per query, cached in production use) and
evaluation scaling; asserts agreement with the fixpoint algorithm, the
cross-check that the generated Claim 5 programs are faithful.  The
hash-indexed join engine is asserted >= 2x over the preserved
scan-and-unify baseline on the aggregate NL workload.
"""

import os
import time

import pytest

from repro.datalog.cqa_program import build_cqa_program, instance_to_edb
from repro.datalog.engine import evaluate_program, evaluate_program_naive
from repro.solvers.fixpoint import certain_answer_fixpoint
from repro.solvers.nl_solver import certain_answer_nl
from repro.workloads.generators import chain_instance, planted_instance

from conftest import seeded

NL_QUERIES = ["RRX", "RXRY", "UVUVWV"]

QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"

#: Indexed joins vs scan-and-unify on the aggregate workload below.
INDEXED_SPEEDUP_FLOOR = 1.5 if QUICK else 2.0


def _indexed_workloads():
    """The E7 instances, paired with their Claim 5 programs."""
    workloads = []
    n_facts = 80 if QUICK else 160
    for query in NL_QUERIES:
        rng = seeded(n_facts * 13 + len(query))
        db = planted_instance(
            rng, query, n_constants=max(6, n_facts // 8),
            n_paths=n_facts // (4 * len(query)) + 1,
            n_noise_facts=n_facts // 2, conflict_rate=0.4,
        )
        workloads.append((build_cqa_program(query), instance_to_edb(db)))
    chain = chain_instance(
        "RRX", repetitions=20 if QUICK else 40, conflict_every=4
    )
    workloads.append((build_cqa_program("RRX"), instance_to_edb(chain)))
    return workloads


def test_bench_e7_indexed_joins_speedup():
    """Hash-indexed joins are >= 2x the scan-and-unify inner loop."""
    workloads = _indexed_workloads()
    naive_seconds = 0.0
    indexed_seconds = 0.0
    for cqa, edb in workloads:
        best_naive = best_indexed = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            naive = evaluate_program_naive(cqa.program, edb)
            best_naive = min(best_naive, time.perf_counter() - start)
            start = time.perf_counter()
            indexed = evaluate_program(cqa.program, edb)
            best_indexed = min(best_indexed, time.perf_counter() - start)
        assert indexed == naive, "indexed joins diverged from the baseline"
        naive_seconds += best_naive
        indexed_seconds += best_indexed
    speedup = naive_seconds / indexed_seconds
    assert speedup >= INDEXED_SPEEDUP_FLOOR, (
        "expected >= {}x indexed-join speedup over scan-and-unify, "
        "measured {:.1f}x (naive {:.4f}s vs indexed {:.4f}s)".format(
            INDEXED_SPEEDUP_FLOOR, speedup, naive_seconds, indexed_seconds
        )
    )


@pytest.mark.parametrize("query", NL_QUERIES)
def test_bench_e7_program_generation(benchmark, query):
    program = benchmark(build_cqa_program, query)
    assert len(program.program) > 0


@pytest.mark.parametrize("query", NL_QUERIES)
@pytest.mark.parametrize("n_facts", [40, 160])
def test_bench_e7_nl_evaluation(benchmark, query, n_facts):
    rng = seeded(n_facts * 13 + len(query))
    db = planted_instance(
        rng, query, n_constants=max(6, n_facts // 8),
        n_paths=n_facts // (4 * len(query)) + 1,
        n_noise_facts=n_facts // 2, conflict_rate=0.4,
    )
    result = benchmark(certain_answer_nl, db, query)
    assert result.answer == certain_answer_fixpoint(db, query).answer


@pytest.mark.parametrize("repetitions", [10, 40])
def test_bench_e7_nl_chain(benchmark, repetitions):
    db = chain_instance("RRX", repetitions=repetitions, conflict_every=4)
    result = benchmark(certain_answer_nl, db, "RRX")
    assert result.answer == certain_answer_fixpoint(db, "RRX").answer
