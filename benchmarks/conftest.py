"""Shared fixtures and helpers for the benchmark suite.

Every benchmark regenerates one experiment of DESIGN.md's index (E1-E14).
Benchmarks assert correctness of the measured computation where ground
truth is affordable, so `pytest benchmarks/ --benchmark-only` doubles as
an end-to-end validation pass.
"""

import random

import pytest


@pytest.fixture
def rng():
    return random.Random(0xBEEF)


def seeded(seed: int) -> random.Random:
    return random.Random(seed)
