"""E2 + E12: the classification table and classifier cost vs |q|.

E2 regenerates the paper's "classification table" (Example 3 and the
other named queries) -- the reproduction's analogue of a results table.
E12 measures that deciding the class takes polynomial time in |q|
(Theorem 2's decidability claim).
"""

import pytest

from repro.classification.classifier import classify
from repro.workloads.queries import (
    PAPER_QUERY_CLASSES,
    conp_family,
    fo_family,
    nl_family,
    ptime_family,
)


def classify_catalog():
    return {q: str(classify(q).complexity) for q in PAPER_QUERY_CLASSES}


def test_bench_e2_paper_table(benchmark):
    """Classify the full catalog; assert every class matches the paper."""
    result = benchmark(classify_catalog)
    assert result == {
        q: str(cls) for q, cls in PAPER_QUERY_CLASSES.items()
    }


@pytest.mark.parametrize("n", [4, 8, 16, 32])
def test_bench_e12_classifier_scaling_fo(benchmark, n):
    """Classifier cost on (RX)^n -- polynomial in |q| (quadratic pairs)."""
    query = fo_family(n)
    result = benchmark(classify, query)
    assert str(result.complexity) == "FO"


@pytest.mark.parametrize("n", [4, 8, 16, 32])
def test_bench_e12_classifier_scaling_nl(benchmark, n):
    query = nl_family(n)
    result = benchmark(classify, query)
    assert str(result.complexity) == "NL-complete"


@pytest.mark.parametrize("n", [4, 8, 16])
def test_bench_e12_classifier_scaling_ptime(benchmark, n):
    query = ptime_family(n)
    result = benchmark(classify, query)
    assert str(result.complexity) == "PTIME-complete"


@pytest.mark.parametrize("n", [4, 8, 16])
def test_bench_e12_classifier_scaling_conp(benchmark, n):
    query = conp_family(n)
    result = benchmark(classify, query)
    assert str(result.complexity) == "coNP-complete"
