"""E11: solver crossover -- polynomial algorithms vs exponential baselines.

The shape Theorem 3 predicts: brute-force repair enumeration grows
exponentially with the number of conflicting blocks while the fixpoint
algorithm stays polynomial; the SAT encoding sits in between (polynomial
encoding, exponential worst-case search).  Includes the at-most-one
encoding ablation.
"""

import pytest

from repro.db.repairs import count_repairs
from repro.solvers.brute_force import certain_answer_brute_force
from repro.solvers.fixpoint import certain_answer_fixpoint
from repro.solvers.sat_encoding import certain_answer_sat
from repro.workloads.generators import chain_instance


def conflicted_chain(repetitions):
    return chain_instance("RRX", repetitions=repetitions, conflict_every=3)


@pytest.mark.parametrize("repetitions", [2, 4, 6])
def test_bench_e11_brute_force(benchmark, repetitions):
    db = conflicted_chain(repetitions)
    assert count_repairs(db) == 2 ** len(db.conflicting_blocks())
    result = benchmark(certain_answer_brute_force, db, "RRX")
    assert result.answer == certain_answer_fixpoint(db, "RRX").answer


@pytest.mark.parametrize("repetitions", [2, 4, 6, 12, 24])
def test_bench_e11_fixpoint(benchmark, repetitions):
    db = conflicted_chain(repetitions)
    result = benchmark(certain_answer_fixpoint, db, "RRX")
    if count_repairs(db) <= 10_000:
        assert result.answer == certain_answer_brute_force(db, "RRX").answer


@pytest.mark.parametrize("repetitions", [2, 4, 6, 12])
def test_bench_e11_sat(benchmark, repetitions):
    db = conflicted_chain(repetitions)
    result = benchmark(certain_answer_sat, db, "RRX")
    assert result.answer == certain_answer_fixpoint(db, "RRX").answer


@pytest.mark.parametrize("at_most_one", [False, True])
def test_bench_e11_sat_encoding_ablation(benchmark, at_most_one):
    """At-most-one block clauses are redundant for path queries; the
    ablation quantifies their cost."""
    db = conflicted_chain(8)
    result = benchmark(certain_answer_sat, db, "RRX", at_most_one=at_most_one)
    assert result.answer == certain_answer_fixpoint(db, "RRX").answer
