"""E4 + E5 + ablation: the Figure 5 fixpoint algorithm.

E4: the Figure 6 example run (q = RRX on the R-chain).
E5: polynomial scaling in the number of facts, for queries of every
tractable class (Theorem 3 upper bounds).
Ablation: the N-relation computation vs the full solve (which adds the
witness scan and, on "no", the repair construction).
"""

import pytest

from repro.solvers.fixpoint import (
    build_minimal_repair,
    certain_answer_fixpoint,
    fixpoint_relation,
)
from repro.workloads.generators import chain_instance, planted_instance
from repro.workloads.paper_instances import figure6_instance

from conftest import seeded


def test_bench_e4_figure6_run(benchmark):
    db = figure6_instance()
    n = benchmark(fixpoint_relation, db, "RRX")
    assert (0, 0) in n


@pytest.mark.parametrize("n_facts", [50, 200, 800])
@pytest.mark.parametrize("query", ["RRX", "RXRX", "RXRYRY"])
def test_bench_e5_fixpoint_scaling(benchmark, query, n_facts):
    """Near-linear growth in |db| for fixed q (all three classes)."""
    rng = seeded(n_facts * 31 + len(query))
    db = planted_instance(
        rng, query, n_constants=max(8, n_facts // 8),
        n_paths=n_facts // (len(query) * 4) + 1,
        n_noise_facts=n_facts // 2, conflict_rate=0.4,
    )
    result = benchmark(certain_answer_fixpoint, db, query)
    assert result.answer in (True, False)


@pytest.mark.parametrize("repetitions", [10, 40, 160])
def test_bench_e5_fixpoint_chain_scaling(benchmark, repetitions):
    db = chain_instance("RRX", repetitions=repetitions, conflict_every=5)
    result = benchmark(certain_answer_fixpoint, db, "RRX")
    assert result.answer


def test_bench_ablation_n_relation_only(benchmark):
    """The raw fixpoint vs the full solve (see the full-solve bench above)."""
    db = chain_instance("RRX", repetitions=40, conflict_every=5)
    n = benchmark(fixpoint_relation, db, "RRX")
    assert any(length == 0 for _, length in n)


def test_bench_ablation_minimal_repair_construction(benchmark):
    db = chain_instance("RXRYRY", repetitions=30, conflict_every=4)
    repair = benchmark(build_minimal_repair, db, "RXRYRY")
    assert repair.is_repair_of(db)
