"""E8 + E9 + E10: the hardness reductions as workloads.

E9: reachability reduction instances solved by the NL/PTIME machinery --
agreement with graph reachability on every input.
E8: SAT reduction instances -- the coNP pipeline (fixpoint prefilter +
DPLL) against formula satisfiability.
E10: MCVP reduction instances -- the fixpoint algorithm against circuit
evaluation.
"""

import pytest

from repro.circuits.circuit import random_assignment, random_monotone_circuit
from repro.cnf.formula import random_ksat
from repro.graphs.digraph import has_directed_path
from repro.graphs.generators import layered_dag
from repro.reductions.mcvp import mcvp_reduction
from repro.reductions.reachability import reachability_reduction
from repro.reductions.sat_reduction import sat_reduction
from repro.solvers.certainty import certain_answer

from conftest import seeded


@pytest.mark.parametrize("layers", [3, 5, 8])
def test_bench_e9_reachability_pipeline(benchmark, layers):
    rng = seeded(layers)
    graph, source, target = layered_dag(layers, 3, rng, density=0.35)
    reduction = reachability_reduction("RRX", graph, source, target)

    def solve():
        return certain_answer(reduction.instance, "RRX")

    result = benchmark(solve)
    expected = reduction.expected_certainty(
        has_directed_path(graph, source, target)
    )
    assert result.answer == expected


@pytest.mark.parametrize("n_vars,n_clauses", [(4, 8), (6, 18), (8, 30)])
def test_bench_e8_sat_pipeline(benchmark, n_vars, n_clauses):
    rng = seeded(n_vars * 100 + n_clauses)
    formula = random_ksat(n_vars, n_clauses, 3, rng)
    reduction = sat_reduction("ARRX", formula)

    def solve():
        return certain_answer(reduction.instance, "ARRX")

    result = benchmark(solve)
    assert result.answer == reduction.expected_certainty(
        formula.is_satisfiable()
    )


@pytest.mark.parametrize("n_gates", [4, 10, 20])
def test_bench_e10_mcvp_pipeline(benchmark, n_gates):
    rng = seeded(n_gates)
    circuit = random_monotone_circuit(4, n_gates, rng)
    assignment = random_assignment(circuit.inputs, rng)
    reduction = mcvp_reduction("RXRYRY", circuit, assignment)

    def solve():
        return certain_answer(reduction.instance, "RXRYRY")

    result = benchmark(solve)
    assert result.answer == reduction.expected_certainty(
        circuit.value(assignment)
    )
