"""E14: repair-space statistics.

The number of repairs is the product of block sizes (exponential in the
number of conflicts); enumeration cost tracks it, while counting is
linear.  Also benchmarks uniform repair sampling.
"""

import pytest

from repro.db.repairs import count_repairs, iter_repairs, random_repair
from repro.workloads.generators import chain_instance, random_instance

from conftest import seeded


@pytest.mark.parametrize("n_facts", [100, 400, 1600])
def test_bench_e14_counting(benchmark, n_facts):
    rng = seeded(n_facts)
    db = random_instance(rng, n_facts // 4, n_facts, ("R", "S"), 0.5)
    total = benchmark(count_repairs, db)
    assert total >= 1


@pytest.mark.parametrize("conflicts", [4, 8, 12])
def test_bench_e14_enumeration(benchmark, conflicts):
    db = chain_instance("RS", repetitions=conflicts, conflict_every=2)
    assert len(db.conflicting_blocks()) == conflicts

    def enumerate_all():
        return sum(1 for _ in iter_repairs(db))

    total = benchmark(enumerate_all)
    assert total == count_repairs(db) == 2 ** conflicts


@pytest.mark.parametrize("n_facts", [100, 400])
def test_bench_e14_sampling(benchmark, n_facts):
    rng = seeded(n_facts)
    db = random_instance(rng, n_facts // 4, n_facts, ("R", "S"), 0.5)
    repair = benchmark(random_repair, db, rng)
    assert repair.is_repair_of(db)


@pytest.mark.parametrize("conflicts", [6, 10])
def test_bench_e14_exact_sharp_certainty(benchmark, conflicts):
    """Exact ♯CERTAINTY by enumeration (exponential baseline)."""
    from repro.solvers.counting import count_satisfying_repairs

    db = chain_instance("RRX", repetitions=conflicts, conflict_every=3)
    count = benchmark(count_satisfying_repairs, db, "RRX")
    assert count.total == count_repairs(db)


@pytest.mark.parametrize("samples", [100, 400])
def test_bench_e14_monte_carlo_sharp_certainty(benchmark, samples):
    """Monte-Carlo ♯CERTAINTY estimation (polynomial per sample)."""
    from repro.solvers.counting import estimate_satisfying_fraction

    rng = seeded(samples)
    db = chain_instance("RRX", repetitions=20, conflict_every=3)
    fraction = benchmark(estimate_satisfying_fraction, db, "RRX", samples, rng)
    assert 0.0 <= fraction <= 1.0
