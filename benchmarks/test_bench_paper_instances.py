"""E1 + E3: the paper's figure instances, solved end to end.

E1: Figure 1 / Examples 1-2 (self-join vs self-join-free).
E3: Figure 2 (RRX yes-instance) and Figure 3 (ARRX bifurcation,
no-instance) -- the instances that motivate the whole classification.
"""

from repro.solvers.brute_force import certain_answer_brute_force
from repro.solvers.certainty import certain_answer
from repro.workloads.paper_instances import (
    example1_q1,
    example1_q2,
    figure1_instance,
    figure2_instance,
    figure3_instance,
)


def test_bench_e1_figure1_self_join(benchmark):
    db = figure1_instance()
    q1 = example1_q1()
    result = benchmark(certain_answer_brute_force, db, q1)
    assert result.answer  # yes-instance for the self-join q1


def test_bench_e1_figure1_self_join_free(benchmark):
    db = figure1_instance()
    q2 = example1_q2()
    result = benchmark(certain_answer_brute_force, db, q2)
    assert not result.answer  # no-instance for the SJF counterpart


def test_bench_e3_figure2_rrx(benchmark):
    db = figure2_instance()
    result = benchmark(certain_answer, db, "RRX")
    assert result.answer
    assert result.witness_constant == 0


def test_bench_e3_figure3_arrx(benchmark):
    db = figure3_instance()
    result = benchmark(certain_answer, db, "ARRX")
    assert not result.answer
