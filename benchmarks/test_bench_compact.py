"""E17: the compact integer data plane vs the object-level kernels.

Pins the PR 4 claim: on the existing NL / PTIME chain workloads, the
array-backed Figure 5 kernel (:func:`repro.solvers.fixpoint.fixpoint_bits`)
and the interned register-compiled Datalog engine
(:class:`repro.datalog.engine.CompactProgram`) are each >= 3x faster than
the retained object-level baselines (:func:`fixpoint_relation` and the
hash-indexed :func:`evaluate_program`).  Every timed computation is
asserted equal to its baseline, so the speedup never comes at the price
of a diverging answer.

Timing protocol: best-of-N per kernel on warm state (instances resident,
compact views and compiled programs built) -- the serving scenario both
kernels were built for.  Scheduler noise only ever adds seconds, so the
minimum is a robust per-kernel estimate and the ratio of aggregate
minima a robust speedup floor.
"""

import os
import time

import pytest

from repro.datalog.cqa_program import build_cqa_program, instance_to_edb
from repro.datalog.engine import compact_program, evaluate_program
from repro.solvers.fixpoint import (
    FixpointTables,
    fixpoint_bits,
    fixpoint_relation,
)
from repro.workloads.generators import chain_instance

QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"

#: The headline PR 4 gate: compact kernels vs object-level baselines.
COMPACT_SPEEDUP_FLOOR = 3.0

REPETITIONS = 60 if QUICK else 150
PASSES = 5

#: The existing incremental-layer chain workloads, one per C3 class the
#: compact fixpoint kernel serves.
FIXPOINT_WORKLOADS = [("RRX", "NL-complete"), ("RXRYRY", "PTIME-complete")]

#: The existing NL chain workloads (test_bench_nl.py shapes).
DATALOG_WORKLOADS = ["RRX", "RXRY"]


def _best(callable_, passes=PASSES):
    best = float("inf")
    result = None
    for _ in range(passes):
        start = time.perf_counter()
        result = callable_()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_bench_e17_compact_fixpoint_speedup():
    """fixpoint_bits >= 3x fixpoint_relation on the NL/PTIME chains."""
    object_seconds = 0.0
    compact_seconds = 0.0
    for query, _complexity in FIXPOINT_WORKLOADS:
        db = chain_instance(
            query, repetitions=REPETITIONS, conflict_every=4
        )
        tables = FixpointTables.build(query)
        fixpoint_bits(db, query, tables=tables)  # warm view + kernel plan
        best_object, n_object = _best(
            lambda: fixpoint_relation(db, query, tables=tables)
        )
        best_compact, n_compact = _best(
            lambda: fixpoint_bits(db, query, tables=tables)
        )
        assert n_compact.to_set() == n_object, (
            "compact kernel diverged on {}".format(query)
        )
        object_seconds += best_object
        compact_seconds += best_compact
    speedup = object_seconds / compact_seconds
    assert speedup >= COMPACT_SPEEDUP_FLOOR, (
        "expected >= {}x compact-fixpoint speedup, measured {:.1f}x "
        "(object {:.4f}s vs compact {:.4f}s)".format(
            COMPACT_SPEEDUP_FLOOR, speedup, object_seconds, compact_seconds
        )
    )


def test_bench_e17_compact_datalog_speedup():
    """CompactProgram.evaluate >= 3x the indexed object engine on the
    Claim 5 programs over the NL chain workloads."""
    object_seconds = 0.0
    compact_seconds = 0.0
    for query in DATALOG_WORKLOADS:
        db = chain_instance(
            query, repetitions=REPETITIONS // 3, conflict_every=4
        )
        cqa = build_cqa_program(query)
        edb = instance_to_edb(db)
        compiled = compact_program(cqa.program)
        intern = compiled.interner.constant_id
        decode = compiled.interner.constant
        edb_int = {
            predicate: [tuple(intern(v) for v in row) for row in rows]
            for predicate, rows in edb.items()
        }
        best_object, object_mat = _best(
            lambda: evaluate_program(cqa.program, edb), passes=3
        )
        best_compact, compact_mat = _best(
            lambda: compiled.evaluate(edb_int), passes=3
        )
        decoded = {
            predicate: {tuple(decode(v) for v in row) for row in rows}
            for predicate, rows in compact_mat.items()
        }
        assert decoded == object_mat, (
            "compact engine diverged on {}".format(query)
        )
        object_seconds += best_object
        compact_seconds += best_compact
    speedup = object_seconds / compact_seconds
    assert speedup >= COMPACT_SPEEDUP_FLOOR, (
        "expected >= {}x compact-Datalog speedup, measured {:.1f}x "
        "(object {:.4f}s vs compact {:.4f}s)".format(
            COMPACT_SPEEDUP_FLOOR, speedup, object_seconds, compact_seconds
        )
    )


@pytest.mark.parametrize("query,_complexity", FIXPOINT_WORKLOADS)
def test_bench_e17_compact_fixpoint_per_solve(benchmark, query, _complexity):
    """Per-solve cost of the compact kernel on a warm instance."""
    db = chain_instance(query, repetitions=REPETITIONS, conflict_every=4)
    tables = FixpointTables.build(query)
    fixpoint_bits(db, query, tables=tables)
    n = benchmark(fixpoint_bits, db, query, tables)
    assert len(n) > 0
    assert n.to_set() == fixpoint_relation(db, query, tables=tables)


def test_bench_e17_compact_view_patch(benchmark):
    """O(delta) compact-view patching along a commit (vs full rebuild)."""
    from repro.db.delta import DeltaInstance
    from repro.db.facts import Fact

    db = chain_instance("RRX", repetitions=REPETITIONS, conflict_every=4)
    db.compact()
    fact = Fact("R", 3, 10 ** 6)

    def patch_once():
        overlay = DeltaInstance(db)
        overlay.insert_fact(fact)
        return overlay.commit().compact()

    view = benchmark(patch_once)
    assert view.local_of[10 ** 6] is not None
