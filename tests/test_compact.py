"""The compact integer data plane: kernels must equal the object plane.

Differential coverage for PR 4's interned / array-backed execution
representation:

* :class:`~repro.db.interner.Interner` id stability;
* :class:`~repro.db.compact.CompactInstance` -- the view built fresh
  and the view carried forward by O(delta) ``patched`` commits must
  describe the same instance (same adjacency, same live domain);
* :func:`~repro.solvers.fixpoint.fixpoint_bits` (compact kernel) ==
  :func:`~repro.solvers.fixpoint.fixpoint_relation` (object baseline)
  across all four Theorem 2 complexity classes and random instances;
* :func:`~repro.datalog.engine.evaluate_program_compact` ==
  :func:`~repro.datalog.engine.evaluate_program` on the Claim 5
  programs and on handwritten programs with constants, builtins and
  negation;
* ``solve_delta`` update sequences and direct
  :class:`~repro.solvers.fixpoint.FixpointState` maintenance on the
  compact representation (the compact view being patched along the
  update chain, never recompiled);
* dense automata tables (:meth:`NFA.dense`, :meth:`DFA.dense_tables`)
  agreeing with the object-level semantics;
* the satellite contracts: ``Block.presorted``, instance pickling
  without the compact cache, lazy certificates surviving pickling
  unresolved, and ``CertaintyResult.strip``.
"""

import pickle
import random

import pytest

from repro.automata.dfa import DFA
from repro.automata.query_nfa import query_nfa, query_nfa_dense
from repro.datalog.cqa_program import build_cqa_program, instance_to_edb
from repro.datalog.engine import (
    compact_program,
    evaluate_program,
    evaluate_program_compact,
)
from repro.datalog.syntax import Literal, Program, Rule, var
from repro.db.compact import CompactInstance
from repro.db.delta import Delta, DeltaInstance
from repro.db.facts import Fact
from repro.db.instance import Block, DatabaseInstance
from repro.db.interner import Interner, global_interner
from repro.engine import CertaintyEngine
from repro.solvers.fixpoint import (
    FixpointState,
    fixpoint_bits,
    fixpoint_relation,
)
from repro.solvers.result import CertaintyResult, LazyMinimalRepair
from repro.workloads.generators import (
    chain_instance,
    planted_instance,
    random_instance,
)

#: Two queries per Theorem 2 complexity class (as in the engine tests).
CLASS_QUERIES = [
    ("RR", "FO"),
    ("RXRX", "FO"),
    ("RRX", "NL-complete"),
    ("RXRY", "NL-complete"),
    ("RXRYRY", "PTIME-complete"),
    ("RXRRR", "PTIME-complete"),
    ("ARRX", "coNP-complete"),
    ("RXRXRYRY", "coNP-complete"),
]


def decoded_edges(view):
    """The view's adjacency decoded to (relation, key, value) triples."""
    triples = set()
    for relation in view.relations:
        rows = view.out[relation]
        for key_lid, values in enumerate(rows):
            for value_lid in values:
                triples.add(
                    (relation, view.consts[key_lid], view.consts[value_lid])
                )
    return triples


def assert_views_equivalent(patched, fresh):
    """Structural equivalence of a patched view and a fresh build."""
    assert decoded_edges(patched) == decoded_edges(fresh)
    live_patched = {patched.consts[lid] for lid in patched.alive_lids()}
    live_fresh = {fresh.consts[lid] for lid in fresh.alive_lids()}
    assert live_patched == live_fresh
    # In-adjacency and degrees agree with the out-adjacency.
    for view in (patched, fresh):
        for relation in view.relations:
            for key_lid, values in enumerate(view.out[relation]):
                assert view.out_deg[relation][key_lid] == len(values)
                for value_lid in values:
                    assert key_lid in view.in_[relation][value_lid]


def random_update(rng, db, alphabet, n_constants=7):
    """A random effective delta overlay over *db*."""
    overlay = DeltaInstance(db)
    facts = sorted(db.facts)
    for _ in range(rng.randint(1, 3)):
        if facts and rng.random() < 0.5:
            overlay.remove_fact(rng.choice(facts))
        else:
            overlay.insert_fact(
                Fact(
                    rng.choice(alphabet),
                    rng.randrange(n_constants + 3),
                    rng.randrange(n_constants + 3),
                )
            )
    return overlay


class TestInterner:
    def test_ids_dense_and_stable(self):
        interner = Interner()
        ids = [interner.constant_id(v) for v in ("a", 0, ("t", 1), "a", 0)]
        assert ids == [0, 1, 2, 0, 1]
        assert [interner.constant(i) for i in (0, 1, 2)] == ["a", 0, ("t", 1)]
        assert interner.relation_id("R") == 0
        assert interner.relation_id("X") == 1
        assert interner.relation(1) == "X"

    def test_global_interner_is_shared(self):
        assert global_interner() is global_interner()

    def test_interner_refuses_pickle(self):
        with pytest.raises(TypeError):
            pickle.dumps(Interner())


class TestCompactInstance:
    def test_build_matches_instance(self):
        db = DatabaseInstance.from_triples(
            [("R", 0, 1), ("R", 0, 2), ("X", 2, 0), ("R", 2, 2)]
        )
        view = db.compact()
        assert view.n == 3
        assert decoded_edges(view) == {f.as_triple() for f in db.facts}
        assert db.compact() is view  # cached on the instance

    def test_csr_offsets_are_block_counts(self):
        db = DatabaseInstance.from_triples(
            [("R", 0, 1), ("R", 0, 2), ("R", 1, 2)]
        )
        view = db.compact()
        block_keys, offsets, values = view.csr("R")
        counts = {
            view.consts[block_keys[i]]: offsets[i + 1] - offsets[i]
            for i in range(len(block_keys))
        }
        assert counts == {0: 2, 1: 1}
        assert len(values) == 3

    def test_patched_equals_fresh_build_random_chains(self):
        rng = random.Random(0xC0)
        alphabet = ["R", "X"]
        db = random_instance(rng, 7, 14, alphabet=alphabet)
        db.compact()  # warm, so commits patch instead of recompiling
        for _ in range(25):
            overlay = random_update(rng, db, alphabet)
            committed = overlay.commit()
            patched = committed.compact()
            assert_views_equivalent(
                patched, CompactInstance.build(committed)
            )
            db = committed

    def test_patched_constant_arrival_and_departure(self):
        db = DatabaseInstance.from_triples([("R", 0, 1)])
        db.compact()
        grown = Delta.inserting(("R", 1, 2)).apply_to(db).commit()
        view = grown.compact()
        assert {view.consts[l] for l in view.alive_lids()} == {0, 1, 2}
        shrunk = (
            Delta.removing(("R", 1, 2), ("R", 0, 1))
            .then_inserting(("X", 5, 6))
            .apply_to(grown)
            .commit()
        )
        view = shrunk.compact()
        assert {view.consts[l] for l in view.alive_lids()} == {5, 6}
        assert_views_equivalent(view, CompactInstance.build(shrunk))

    def test_compact_refuses_pickle_and_instance_drops_it(self):
        db = DatabaseInstance.from_triples([("R", 0, 1)])
        view = db.compact()
        with pytest.raises(TypeError):
            pickle.dumps(view)
        clone = pickle.loads(pickle.dumps(db))
        assert clone == db and clone.blocks()[0].facts == db.blocks()[0].facts


class TestCompactFixpointKernel:
    @pytest.mark.parametrize("query,_cls", CLASS_QUERIES)
    def test_kernel_agreement_all_classes(self, query, _cls):
        rng = random.Random(len(query) * 131)
        for trial in range(6):
            db = planted_instance(
                rng,
                query,
                n_constants=6,
                n_paths=2,
                n_noise_facts=12,
                conflict_rate=0.5,
            )
            assert fixpoint_bits(db, query).to_set() == fixpoint_relation(
                db, query
            ), (query, trial)

    def test_kernel_agreement_random_words(self):
        rng = random.Random(0xF1)
        for trial in range(60):
            word = "".join(
                rng.choice("RX") for _ in range(rng.randint(0, 5))
            )
            db = random_instance(rng, 6, 12, alphabet=["R", "X"])
            n = fixpoint_bits(db, word)
            assert n.to_set() == fixpoint_relation(db, word), (word, trial)
            assert len(n) == len(fixpoint_relation(db, word))

    def test_kernel_on_patched_views(self):
        """The kernel must be exact on views carried forward by commits
        (dead local ids keep no pairs; arrivals get init axioms)."""
        rng = random.Random(0xF2)
        db = random_instance(rng, 6, 12, alphabet=["R", "X"])
        db.compact()
        for _ in range(20):
            overlay = random_update(rng, db, ["R", "X"])
            db = overlay.commit()
            for query in ("RRX", "RXRX"):
                assert fixpoint_bits(db, query).to_set() == fixpoint_relation(
                    db, query
                )

    def test_empty_query_and_empty_instance(self):
        db = DatabaseInstance.from_triples([("R", 0, 1)])
        assert fixpoint_bits(db, "").to_set() == {(0, 0), (1, 0)}
        empty = DatabaseInstance.empty()
        assert fixpoint_bits(empty, "RRX").to_set() == set()


class TestCompactDatalog:
    @pytest.mark.parametrize("query", ["RRX", "RXRY", "UVUVWV"])
    def test_cqa_materializations_equal(self, query):
        rng = random.Random(len(query))
        cqa = build_cqa_program(query)
        for n_noise in (8, 20):
            db = planted_instance(
                rng,
                query,
                n_constants=7,
                n_paths=2,
                n_noise_facts=n_noise,
                conflict_rate=0.4,
            )
            edb = instance_to_edb(db)
            assert evaluate_program_compact(
                cqa.program, edb
            ) == evaluate_program(cqa.program, edb)

    def test_constants_builtins_negation(self):
        x, y = var("X"), var("Y")
        program = Program(
            [
                Rule(Literal("base", (x,)), (Literal("e", (x, y)),)),
                Rule(
                    Literal("p", (x, y)),
                    (
                        Literal("e", (x, y)),
                        Literal("neq", (x, "a")),
                        Literal("e", (y, "c"), negated=True),
                    ),
                ),
                Rule(
                    Literal("anchored", (x,)),
                    (Literal("e", ("a", x)),),
                ),
                Rule(
                    Literal("diag", (x,)),
                    (Literal("e", (x, x)),),
                ),
            ]
        )
        edb = {
            "e": [("a", "b"), ("b", "c"), ("c", "a"), ("d", "d"), ("b", "b")]
        }
        assert evaluate_program_compact(program, edb) == evaluate_program(
            program, edb
        )

    def test_compact_program_memoized(self):
        program = build_cqa_program("RRX").program
        assert compact_program(program) is compact_program(program)


class TestSolveDeltaOnCompactPlane:
    @pytest.mark.parametrize("query,expected", CLASS_QUERIES)
    def test_delta_sequences_match_scratch(self, query, expected):
        rng = random.Random(len(query) * 17 + 1)
        alphabet = sorted(set(query))
        db = planted_instance(
            rng, query, n_constants=6, n_paths=2,
            n_noise_facts=10, conflict_rate=0.5,
        )
        engine = CertaintyEngine()
        assert str(engine.compile(query).complexity) == expected
        scratch = CertaintyEngine()
        db.compact()  # ensure the chain patches the compact view
        for step in range(8):
            overlay = random_update(rng, db, alphabet)
            delta = Delta(
                removes=tuple(overlay.removed_facts),
                inserts=tuple(overlay.added_facts),
            )
            incremental = engine.solve_delta(db, delta, query)
            db = delta.apply_to(db).commit()
            fresh = scratch.solve(db, query)
            assert incremental.answer == fresh.answer, (query, step)

    def test_fixpoint_state_maintenance_on_patched_views(self):
        rng = random.Random(0xD5)
        for query in ("RRX", "RXRYRY", "ARRX"):
            db = planted_instance(
                rng, query, n_constants=6, n_paths=2,
                n_noise_facts=10, conflict_rate=0.5,
            )
            db.compact()
            state = FixpointState.compute(db, query)
            for step in range(12):
                overlay = random_update(rng, db, sorted(set(query)))
                new_db = overlay.commit()
                state.apply_delta(
                    new_db, overlay.added_facts, overlay.removed_facts
                )
                assert state.n_set == fixpoint_relation(new_db, query), (
                    query,
                    step,
                )
                assert state.starts == {
                    c for c, length in state.n_set if length == 0
                }
                db = new_db


class TestDenseAutomata:
    @pytest.mark.parametrize("query", ["RRX", "RXRRR", "UVUVWV"])
    def test_dense_nfa_accepts_agrees(self, query):
        rng = random.Random(len(query) * 5)
        nfa = query_nfa(query)
        dense = query_nfa_dense(query)
        alphabet = sorted(nfa.alphabet) + ["Z"]
        for _ in range(80):
            word = [
                rng.choice(alphabet)
                for _ in range(rng.randint(0, 2 * len(query)))
            ]
            assert dense.accepts(word) == nfa.accepts(word), word

    def test_dense_symbol_numbering(self):
        dense = query_nfa_dense("RRX")
        assert dense.symbols == ("R", "X")
        assert dense.symbol_index == {"R": 0, "X": 1}
        assert len(dense.trans_masks) == len(dense.symbols)

    def test_dense_tables_match_transitions(self):
        dfa = DFA.from_nfa(query_nfa("RXRRR"))
        symbols, table, accepting = dfa.dense_tables()
        n_symbols = len(symbols)
        for state in range(dfa.n_states):
            assert accepting[state] == (state in dfa.accepting)
            for si, symbol in enumerate(symbols):
                expected = dfa.transitions.get((state, symbol), -1)
                assert table[state * n_symbols + si] == expected


class TestSatellites:
    def test_block_presorted_trusted_path(self):
        facts = tuple(sorted([Fact("R", 0, 2), Fact("R", 0, 1)]))
        block = Block.presorted(("R", 0), facts)
        assert block.facts == facts
        assert block == block and block.is_conflicting()
        # The regular constructor still validates and sorts.
        assert Block(("R", 0), reversed(facts)).facts == facts
        with pytest.raises(ValueError):
            Block(("R", 1), facts)

    def test_commit_blocks_equal_fresh_instance_blocks(self):
        base = DatabaseInstance.from_triples([("R", 0, 1), ("R", 1, 2)])
        overlay = DeltaInstance(base)
        overlay.insert_fact(Fact("R", 0, 9))
        overlay.insert_fact(Fact("R", 0, 0))
        committed = overlay.commit()
        fresh = DatabaseInstance(committed.facts)
        assert [b.facts for b in committed.blocks()] == [
            b.facts for b in fresh.blocks()
        ]

    def test_lazy_certificate_survives_pickling_unresolved(self):
        db = DatabaseInstance.from_triples([("R", 0, 1), ("R", 0, 2)])
        result = CertaintyResult(
            query="RRX",
            answer=False,
            method="fixpoint",
            falsifying_repair=LazyMinimalRepair(db, "RRX"),
        )
        clone = pickle.loads(pickle.dumps(result))
        assert clone.has_lazy_repair  # not resolved at pickle time
        assert clone.falsifying_repair.is_repair_of(db)

    def test_opaque_lazy_certificate_resolved_at_pickle_time(self):
        db = DatabaseInstance.from_triples([("R", 0, 1)])
        result = CertaintyResult(
            query="q", answer=False, method="m",
            falsifying_repair=lambda: db,
        )
        clone = pickle.loads(pickle.dumps(result))
        assert not clone.has_lazy_repair
        assert clone.falsifying_repair == db

    def test_strip_drops_certificates(self):
        db = DatabaseInstance.from_triples([("R", 0, 1), ("R", 0, 2)])
        result = CertaintyResult(
            query="RRX", answer=False, method="fixpoint",
            falsifying_repair=LazyMinimalRepair(db, "RRX"),
        )
        assert result.strip() is result
        assert result.falsifying_repair is None
        assert not result.has_lazy_repair

    def test_batch_strip_certificates_local_and_parallel(self):
        dbs = [
            chain_instance("RRX", repetitions=2),  # yes-instance
            DatabaseInstance.from_triples([("R", 0, 1), ("R", 0, 2)]),  # no
        ]
        engine = CertaintyEngine()
        pairs = [(db, "RRX") for db in dbs]
        answers = [r.answer for r in engine.solve_batch(pairs)]
        for workers in (None, 2):
            stripped = engine.solve_batch(
                pairs, workers=workers, strip_certificates=True
            )
            assert [r.answer for r in stripped] == answers
            assert all(r._repair_source is None for r in stripped)
        # Without stripping, parallel "no" results come back still lazy.
        kept = engine.solve_batch(pairs, workers=2)
        assert [r.answer for r in kept] == answers
        assert kept[answers.index(False)].has_lazy_repair
