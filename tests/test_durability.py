"""The durable journal tier, end to end.

Three guarantees ride on :mod:`repro.serving.journal`:

* **Restart survival** -- a server opened on a sqlite journal path can
  be closed and reopened, and every resident comes back from the log
  alone: identical ``solve`` / ``solve_delta`` answers, identical
  resolved Lemma 9 certificates, zero client re-registration.
* **Exactly-once writes under crash-retry** -- the process transport
  journals writes ahead of dispatch and stamps them with per-shard
  sequence numbers; a child that commits a delta and dies *before
  acking* (the fault-injection hook ``fail_replies``) is replayed to
  the post-write state and the retried write is skipped, not applied
  twice.
* **Monotone recovery accounting** -- restart counters and carried
  snapshots move only after a successful restart+replay, so a child
  that fails twice in a row never double-merges stats.
"""

import asyncio

import pytest

from repro.db.delta import Delta
from repro.db.instance import DatabaseInstance
from repro.engine import CertaintyEngine
from repro.serving import (
    AsyncCertaintyServer,
    RestartPolicy,
    ShardRequest,
    ShardWorker,
    SqliteJournalStore,
)
from repro.workloads.generators import chain_instance

TRANSPORTS = ["thread", "process"]

#: Queries with known mixed complexity classes (paper Figures 2-4).
QUERIES = ["RRX", "RXRX", "RXRYRY"]


def _toy() -> DatabaseInstance:
    return DatabaseInstance.from_triples(
        [("R", 0, 1), ("R", 1, 2), ("X", 2, 3)]
    )


def _facts(db: DatabaseInstance):
    return sorted((f.relation, f.key, f.value) for f in db.facts)


class TestRestartSurvival:
    """Close the server, reopen the same sqlite path, everything holds."""

    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_server_restart_restores_residents(self, tmp_path, transport):
        spec = "sqlite:{}".format(tmp_path / "journal.db")
        instances = {
            "chain{}".format(i): chain_instance(
                q, repetitions=3, conflict_every=3
            )
            for i, q in enumerate(QUERIES)
        }
        delta = Delta.removing(("X", 2, 3))

        async def first_life():
            async with AsyncCertaintyServer(
                num_shards=2, transport=transport, journal_store=spec
            ) as server:
                for name, db in sorted(instances.items()):
                    await server.register(name, db)
                await server.register("toy", _toy())
                await server.solve_delta("toy", delta, "RRX")
                answers = {
                    (name, q): (await server.solve(name, q)).answer
                    for name in sorted(instances)
                    for q in QUERIES
                }
                answers[("toy", "RRX")] = (
                    await server.solve("toy", "RRX")
                ).answer
                return answers, server.stats()["placement"]

        async def second_life():
            async with AsyncCertaintyServer(
                num_shards=2, transport=transport, journal_store=spec
            ) as server:
                # Zero re-registration: the journal is the only source.
                answers = {
                    (name, q): (await server.solve(name, q)).answer
                    for name in sorted(instances)
                    for q in QUERIES
                }
                answers[("toy", "RRX")] = (
                    await server.solve("toy", "RRX")
                ).answer
                toy = await server.get_instance("toy")
                return answers, server.stats()["placement"], toy

        before, placement_before = asyncio.run(first_life())
        after, placement_after, toy = asyncio.run(second_life())
        assert after == before
        assert placement_after == placement_before
        # The restored resident is the *post-delta* instance.
        assert toy == delta.apply_to(_toy()).commit()

    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_restart_rehydrates_lemma9_certificates(self, tmp_path, transport):
        spec = "sqlite:{}".format(tmp_path / "journal.db")
        # Dropping every Y fact makes RXRYRY a "no" whose certificate is
        # a lazy falsifying repair (Lemma 9) -- stripped on the process
        # wire and rehydrated from the journal copy.
        chain = chain_instance("RXRYRY", repetitions=3, conflict_every=2)
        db = DatabaseInstance([f for f in chain.facts if f.relation != "Y"])

        async def first_life():
            async with AsyncCertaintyServer(
                num_shards=2, transport=transport, journal_store=spec
            ) as server:
                await server.register("no-instance", db)
                result = await server.solve("no-instance", "RXRYRY")
                assert result.answer is False

        async def second_life():
            async with AsyncCertaintyServer(
                num_shards=2, transport=transport, journal_store=spec
            ) as server:
                return await server.solve("no-instance", "RXRYRY")

        asyncio.run(first_life())
        result = asyncio.run(second_life())
        assert result.answer is False
        repair = result.falsifying_repair
        assert repair.is_repair_of(db)
        # Lemma 9 is deterministic in the facts: the certificate built
        # from the journal-restored resident equals the one a reference
        # engine builds from the original instance.
        reference = CertaintyEngine().solve(db, "RXRYRY").falsifying_repair
        assert _facts(repair) == _facts(reference)


class TestCrashRetryExactlyOnce:
    """The satellite-1 regression: commit, die before the ack, retry."""

    def test_delta_committed_but_unacked_is_not_reapplied(self, tmp_path):
        store = SqliteJournalStore(tmp_path / "journal.db")
        worker = ShardWorker(0, transport="process", journal_store=store)
        try:
            worker.execute([ShardRequest("register", name="toy", db=_toy())])
            # The child will run the next batch -- committing the delta
            # -- then exit without replying: the crash window between
            # commit and ack.
            worker.transport.fail_replies = 1
            delta = ShardRequest(
                "delta",
                name="toy",
                delta=Delta.removing(("X", 2, 3)),
                query="RRX",
            )
            worker.execute([delta])
            # The retry went through journal replay (post-delta state +
            # sealed sequence), skipped the redelivered write, and served
            # the read: the client sees one successful answer.
            assert delta.error is None
            assert delta.result.answer is False
            got = ShardRequest("get", name="toy")
            worker.execute([got])
            assert got.result == Delta.removing(("X", 2, 3)).apply_to(
                _toy()
            ).commit()
            snapshot = worker.transport.snapshot()
            health = worker.stats()["transport"]
            assert health["restarts"] == 1
            # The child acked every journaled write exactly once: its
            # applied high-water equals the journal's.
            assert snapshot["applied_seq"] == store.last_seq(0) == 2
        finally:
            worker.stop()
            store.close()

    def test_core_skips_redelivered_writes(self):
        # The child-side half of the idempotence contract, in isolation:
        # a stamped write at or below applied_seq must not re-run.
        from repro.serving.shard import ShardCore

        core = ShardCore(0)
        rows = core.run_batch(
            [
                ("register", "toy", _toy(), None, None, "auto", 1, None),
                ("delta", "toy", None, Delta.removing(("X", 2, 3)), "RRX",
                 "auto", 2, None),
            ]
        )
        assert all(ok for ok, _ in rows)
        assert core.applied_seq == 2
        committed = core.instances["toy"]
        # Redelivery of both writes: skipped, registry object untouched.
        rows = core.run_batch(
            [
                ("register", "toy", _toy(), None, None, "auto", 1, None),
                ("delta", "toy", None, Delta.removing(("X", 2, 3)), "RRX",
                 "auto", 2, None),
            ]
        )
        assert all(ok for ok, _ in rows)
        assert core.instances["toy"] is committed
        assert rows[1][1].answer is False  # the read half is still served
        # A seal op advances the high-water without touching residents.
        (ok, sealed), = core.run_batch(
            [("seal", None, None, None, None, "auto", 9, None)]
        )
        assert ok and sealed == 9
        assert core.applied_seq == 9


class TestRecoveryAccounting:
    """The satellite-3 regression: stats stay monotone and correct when
    the replacement child fails too."""

    def test_twice_failing_child_counts_one_recovery(self):
        # Zero backoff: the double failure trips the breaker, and the
        # next batch must be an *immediate* half-open probe (with the
        # default backoff it would be shed / served degraded instead).
        worker = ShardWorker(
            0,
            transport="process",
            restart_policy=RestartPolicy(backoff_base=0.0),
        )
        try:
            first = ShardRequest("solve", name="toy", query="RRX")
            worker.execute(
                [ShardRequest("register", name="toy", db=_toy()), first]
            )
            requests_before = worker.transport.snapshot()["requests"]
            assert requests_before == 2
            # Crash the child on the next two round trips: the batch
            # attempt *and* the journal replay of the restarted child
            # both die, so the batch fails -- but no recovery succeeded,
            # so no counters may move yet.
            worker.transport.fail_replies = 2
            doomed = ShardRequest("solve", name="toy", query="RRX")
            worker.execute([doomed])
            assert doomed.error is not None
            health = worker.stats()["transport"]
            assert health["restarts"] == 0
            # The next batch recovers cleanly: exactly one successful
            # recovery, and the pre-crash request counters survived the
            # two dead generations (monotone, no double-merge).
            after = ShardRequest("solve", name="toy", query="RRX")
            worker.execute([after])
            assert after.result.answer is True
            snapshot = worker.transport.snapshot()
            health = worker.stats()["transport"]
            assert health["restarts"] == 1
            assert health["alive"] is True
            # requests: the 2 pre-crash ops + replay register + seal +
            # the served solve -- and nothing counted twice.
            assert snapshot["requests"] == requests_before + 3
        finally:
            worker.stop()

    def test_repeated_recoveries_stay_monotone(self):
        worker = ShardWorker(0, transport="process")
        try:
            worker.execute([ShardRequest("register", name="toy", db=_toy())])
            seen = []
            for _ in range(3):
                worker.transport.process.kill()
                request = ShardRequest("solve", name="toy", query="RRX")
                worker.execute([request])
                assert request.result.answer is True
                seen.append(worker.transport.snapshot()["requests"])
            assert seen == sorted(seen)
            assert worker.stats()["transport"]["restarts"] == 3
        finally:
            worker.stop()
