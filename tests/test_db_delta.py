"""DeltaInstance invariants: the overlay and its commits must be
indistinguishable from freshly built instances.

The copy-on-write overlay patches blocks, adom refcounts and the
outgoing-edge index in place; these tests pin every patched structure
against a from-scratch :class:`DatabaseInstance` across randomized
insert/remove/commit sequences, including edge cases (emptying blocks,
constants leaving and re-entering the domain, insert/remove round-trips).
"""

import random

import pytest

from repro.db.delta import Delta, DeltaInstance
from repro.db.facts import Fact
from repro.db.instance import DatabaseInstance

ALPHABET = ["R", "S", "X"]


def random_fact(rng, n_constants=6):
    return Fact(
        rng.choice(ALPHABET),
        rng.randint(0, n_constants - 1),
        rng.randint(0, n_constants - 1),
    )


def assert_equivalent(committed: DatabaseInstance, fresh: DatabaseInstance):
    """Every observable structure of *committed* matches *fresh*."""
    assert committed == fresh
    assert committed.adom() == fresh.adom()
    assert committed.sorted_adom() == fresh.sorted_adom()
    assert committed.adom_refcounts() == fresh.adom_refcounts()
    assert {b.block_id: b.facts for b in committed.blocks()} == {
        b.block_id: b.facts for b in fresh.blocks()
    }
    assert committed._out_index == fresh._out_index
    assert committed.is_consistent() == fresh.is_consistent()
    assert list(committed) == list(fresh)


class TestDeltaInstanceBasics:
    def test_insert_and_commit(self):
        base = DatabaseInstance.from_triples([("R", 0, 1)])
        overlay = DeltaInstance(base)
        assert overlay.insert_fact(Fact("R", 0, 2))
        assert Fact("R", 0, 2) in overlay
        assert len(overlay) == 2
        committed = overlay.commit()
        assert_equivalent(
            committed,
            DatabaseInstance.from_triples([("R", 0, 1), ("R", 0, 2)]),
        )
        # The base is untouched (copy-on-write).
        assert len(base) == 1
        assert base.block("R", 0).facts == (Fact("R", 0, 1),)

    def test_insert_existing_is_noop(self):
        base = DatabaseInstance.from_triples([("R", 0, 1)])
        overlay = DeltaInstance(base)
        assert not overlay.insert_fact(Fact("R", 0, 1))
        assert overlay.added_facts == frozenset()
        assert overlay.commit() is base

    def test_remove_missing_is_noop(self):
        base = DatabaseInstance.from_triples([("R", 0, 1)])
        overlay = DeltaInstance(base)
        assert not overlay.remove_fact(Fact("R", 5, 5))
        assert overlay.removed_facts == frozenset()

    def test_remove_empties_block_and_adom(self):
        base = DatabaseInstance.from_triples([("R", 0, 1), ("S", 7, 8)])
        overlay = DeltaInstance(base)
        assert overlay.remove_fact(Fact("S", 7, 8))
        assert overlay.block("S", 7) is None
        assert overlay.adom() == frozenset({0, 1})
        assert_equivalent(
            overlay.commit(), DatabaseInstance.from_triples([("R", 0, 1)])
        )

    def test_insert_remove_round_trip_cancels(self):
        base = DatabaseInstance.from_triples([("R", 0, 1)])
        overlay = DeltaInstance(base)
        overlay.insert_fact(Fact("X", 3, 4))
        overlay.remove_fact(Fact("X", 3, 4))
        assert overlay.added_facts == frozenset()
        assert overlay.removed_facts == frozenset()
        assert overlay.adom() == base.adom()
        assert_equivalent(overlay.commit(), base)

    def test_remove_insert_round_trip_cancels(self):
        base = DatabaseInstance.from_triples([("R", 0, 1)])
        overlay = DeltaInstance(base)
        overlay.remove_fact(Fact("R", 0, 1))
        overlay.insert_fact(Fact("R", 0, 1))
        assert overlay.added_facts == frozenset()
        assert overlay.removed_facts == frozenset()
        assert_equivalent(overlay.commit(), base)

    def test_overlay_reads_match_fresh(self):
        base = DatabaseInstance.from_triples(
            [("R", 0, 1), ("R", 0, 2), ("S", 1, 0)]
        )
        overlay = DeltaInstance(base)
        overlay.remove_fact(Fact("R", 0, 2))
        overlay.insert_fact(Fact("S", 2, 0))
        fresh = DatabaseInstance.from_triples(
            [("R", 0, 1), ("S", 1, 0), ("S", 2, 0)]
        )
        assert overlay.facts == fresh.facts
        assert overlay.adom() == fresh.adom()
        assert overlay.sorted_adom() == fresh.sorted_adom()
        assert len(overlay) == len(fresh)
        assert list(overlay) == list(fresh)
        assert overlay.out_facts(0, "R") == fresh.out_facts(0, "R")
        assert overlay.out_facts(0, "S") == fresh.out_facts(0, "S")
        assert {b.block_id for b in overlay.blocks()} == {
            b.block_id for b in fresh.blocks()
        }
        assert overlay.is_consistent() == fresh.is_consistent()


class TestDelta:
    def test_coercion_and_order(self):
        delta = Delta.removing(("R", 0, 1)).then_inserting(("R", 0, 2))
        assert delta.removes == (Fact("R", 0, 1),)
        assert delta.inserts == (Fact("R", 0, 2),)
        assert len(delta) == 2

    def test_apply_to_removes_before_inserts(self):
        base = DatabaseInstance.from_triples([("R", 0, 1)])
        delta = Delta(
            removes=(Fact("R", 0, 1),), inserts=(Fact("R", 0, 1),)
        )
        overlay = delta.apply_to(base)
        assert_equivalent(overlay.commit(), base)


class TestRandomizedInvariants:
    @pytest.mark.parametrize("seed", range(8))
    def test_randomized_sequences_match_fresh(self, seed):
        rng = random.Random(0xDE17A + seed)
        triples = [
            (rng.choice(ALPHABET), rng.randint(0, 5), rng.randint(0, 5))
            for _ in range(rng.randint(0, 18))
        ]
        base = DatabaseInstance.from_triples(triples)
        current = set(base.facts)
        for _round in range(6):
            overlay = DeltaInstance(base)
            for _ in range(rng.randint(1, 8)):
                fact = random_fact(rng)
                if rng.random() < 0.5:
                    changed = overlay.insert_fact(fact)
                    assert changed == (fact not in current)
                    current.add(fact)
                else:
                    changed = overlay.remove_fact(fact)
                    assert changed == (fact in current)
                    current.discard(fact)
            fresh = DatabaseInstance(current)
            assert overlay.facts == fresh.facts
            assert overlay.adom() == fresh.adom()
            committed = overlay.commit()
            assert_equivalent(committed, fresh)
            base = committed  # chain commits: each commit is the next base

    @pytest.mark.parametrize("seed", range(4))
    def test_chained_commits_keep_refcounts_exact(self, seed):
        """Refcounts survive arbitrarily long commit chains."""
        rng = random.Random(0xC4A1 + seed)
        db = DatabaseInstance.empty()
        current = set()
        for _ in range(20):
            overlay = DeltaInstance(db)
            fact = random_fact(rng, n_constants=3)
            if fact in current and rng.random() < 0.5:
                overlay.remove_fact(fact)
                current.discard(fact)
            else:
                overlay.insert_fact(fact)
                current.add(fact)
            db = overlay.commit()
            assert db.adom_refcounts() == DatabaseInstance(
                current
            ).adom_refcounts()
        assert_equivalent(db, DatabaseInstance(current))


class TestCommitIdentity:
    """The PR 3 contract: memoized commits and base-identity fast paths."""

    def _base(self):
        return DatabaseInstance.from_triples([("R", 0, 1), ("R", 1, 2)])

    def test_commit_is_memoized_until_next_edit(self):
        overlay = DeltaInstance(self._base())
        overlay.insert_fact(Fact("R", 0, 9))
        first = overlay.commit()
        assert overlay.commit() is first  # same object, no re-copy
        overlay.insert_fact(Fact("R", 5, 6))
        second = overlay.commit()
        assert second is not first
        assert Fact("R", 5, 6) in second

    def test_untouched_overlay_commits_to_base(self):
        base = self._base()
        assert DeltaInstance(base).commit() is base

    def test_round_trip_commits_to_base(self):
        """Insert-then-remove cancels out: commit returns the base itself."""
        base = self._base()
        overlay = DeltaInstance(base)
        overlay.insert_fact(Fact("R", 0, 9))
        overlay.remove_fact(Fact("R", 0, 9))
        assert not overlay.added_facts and not overlay.removed_facts
        assert overlay.commit() is base

    def test_remove_then_reinsert_commits_to_base(self):
        base = self._base()
        overlay = DeltaInstance(base)
        overlay.remove_fact(Fact("R", 0, 1))
        overlay.insert_fact(Fact("R", 0, 1))
        assert overlay.commit() is base
