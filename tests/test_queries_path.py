"""Tests for path queries and rooted path queries q[c]."""

import pytest

from repro.queries.atoms import Variable
from repro.queries.path_query import PathQuery, RootedPathQuery
from repro.words.word import Word


class TestPathQuery:
    def test_word_roundtrip(self):
        q = PathQuery("RRX")
        assert q.word == Word("RRX")
        assert len(q) == 3

    def test_self_join(self):
        assert PathQuery("RRX").has_self_join()
        assert PathQuery("RSX").is_self_join_free()

    def test_canonical_atoms(self):
        q = PathQuery("RX")
        atoms = list(q.atoms())
        assert str(atoms[0]) == "R(x1, x2)"
        assert str(atoms[1]) == "X(x2, x3)"

    def test_to_conjunctive_query(self):
        cq = PathQuery("RR").to_conjunctive_query()
        assert len(cq) == 2
        assert cq.has_self_join()

    def test_variables_count(self):
        assert len(PathQuery("RRX").variables()) == 4

    def test_tail(self):
        assert PathQuery("RRX").tail() == PathQuery("RX")
        with pytest.raises(ValueError):
            PathQuery("").tail()

    def test_equality_and_hash(self):
        assert PathQuery("RX") == PathQuery("RX")
        assert len({PathQuery("RX"), PathQuery("RX")}) == 1


class TestRootedPathQuery:
    def test_construction(self):
        rooted = PathQuery("RRX").rooted("c")
        assert rooted.root == "c"
        assert rooted.word == Word("RRX")
        assert str(rooted) == "RRX[c]"

    def test_variable_root_rejected(self):
        with pytest.raises(TypeError):
            RootedPathQuery("R", Variable("x"))

    def test_empty_word_rejected(self):
        with pytest.raises(ValueError):
            RootedPathQuery("", "c")

    def test_to_conjunctive_query(self):
        cq = PathQuery("RX").rooted("c").to_conjunctive_query()
        atoms = sorted(str(a) for a in cq.atoms)
        assert atoms == ["R(c, x2)", "X(x2, x3)"]
