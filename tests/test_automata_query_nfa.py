"""Tests for NFA(q), S-NFA(q,u), NFAmin(q) (Definitions 3, 5, 13)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.automata.query_nfa import (
    backward_transitions,
    language_contains,
    nfa_min,
    query_nfa,
    s_nfa,
)
from repro.words.factors import is_prefix
from repro.words.rewind import enumerate_language
from repro.words.word import Word

words = st.text(alphabet="RSX", min_size=1, max_size=6).map(Word)


class TestConstruction:
    def test_figure4_structure(self):
        """Figure 4: NFA(RXRRR) has 6 states and 6 backward transitions."""
        q = Word("RXRRR")
        nfa = query_nfa(q)
        assert len(nfa.states) == 6
        assert nfa.initial == 0
        assert nfa.accepting == frozenset({5})
        backwards = backward_transitions(q)
        # Prefix lengths ending in R: 1, 3, 4, 5 -> pairs (j, i), i < j.
        assert sorted(backwards) == [
            (3, 1), (4, 1), (4, 3), (5, 1), (5, 3), (5, 4)
        ]

    def test_empty_word(self):
        nfa = query_nfa("")
        assert nfa.accepts([])

    def test_s_nfa_start_state(self):
        nfa = s_nfa("RRX", 2)
        assert nfa.accepts("X")
        # The backward ε-transition RR -> R allows further R-reads.
        assert nfa.accepts("RX")
        assert nfa.accepts("RRX")
        assert not nfa.accepts("")
        assert not nfa.accepts("XX")

    def test_s_nfa_bounds(self):
        with pytest.raises(ValueError):
            s_nfa("RRX", 4)


class TestLemma4:
    """NFA(q) accepts exactly L↬(q)."""

    def test_rrx(self):
        nfa = query_nfa("RRX")
        assert nfa.accepts("RRX")
        assert nfa.accepts("RRRRX")
        assert not nfa.accepts("RX")
        assert not nfa.accepts("RRXX")

    @settings(max_examples=30, deadline=None)
    @given(words)
    def test_language_equality_bounded(self, q):
        bound = len(q) + 3
        language = set(enumerate_language(q, bound))
        nfa = query_nfa(q)
        # Every word of L↬(q) is accepted.
        for word in language:
            assert nfa.accepts(word.symbols)
        # Every accepted word up to the bound is in L↬(q).
        from repro.automata.dfa import DFA

        accepted = DFA.from_nfa(nfa).enumerate_accepted(bound)
        for tup in accepted:
            assert Word(tup) in language

    def test_language_contains_helper(self):
        assert language_contains("RXRY", "RXRXRY")
        assert not language_contains("RXRY", "RXRRY")


class TestNfaMin:
    def test_example6(self):
        """Example 6: RXRYRYR accepted by NFA(q) but not NFAmin(q)."""
        q = Word("RXRYR")
        assert query_nfa(q).accepts("RXRYRYR")
        minimal = nfa_min(q)
        assert not minimal.accepts("RXRYRYR")
        assert minimal.accepts("RXRYR")

    @settings(max_examples=30, deadline=None)
    @given(words)
    def test_lemma15_on_accepted_words(self, q):
        """NFAmin accepts exactly the accepted words with no accepted
        proper prefix."""
        nfa = query_nfa(q)
        minimal = nfa_min(q)
        for word in enumerate_language(q, len(q) + 3):
            symbols = word.symbols
            has_accepted_prefix = any(
                nfa.accepts(symbols[:cut]) for cut in range(len(symbols))
            )
            assert minimal.accepts(symbols) == (not has_accepted_prefix)


class TestC1ViaAutomaton:
    @settings(max_examples=30, deadline=None)
    @given(words)
    def test_lemma5_prefix(self, q):
        """Lemma 5(1) bounded check: C1 iff q prefixes every L↬ word."""
        from repro.classification.conditions import satisfies_c1

        language = enumerate_language(q, len(q) + 3)
        all_prefixed = all(is_prefix(q, p) for p in language)
        if satisfies_c1(q):
            assert all_prefixed
