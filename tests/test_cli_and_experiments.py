"""Tests for the CLI and the experiment drivers."""

import pytest

from repro.cli import main, parse_triples
from repro.experiments.classification_table import (
    classification_rows,
    classification_table,
)
from repro.experiments.harness import Table, time_call
from repro.experiments.reductions_report import full_report
from repro.experiments.scaling import crossover_rows, fixpoint_scaling_rows


class TestParseTriples:
    def test_basic(self):
        triples = parse_triples("R,0,1;R,1,2")
        assert triples == [("R", 0, 1), ("R", 1, 2)]

    def test_string_constants(self):
        assert parse_triples("R,a,b") == [("R", "a", "b")]

    def test_negative_ints(self):
        assert parse_triples("R,-1,2") == [("R", -1, 2)]

    def test_newlines_and_blanks(self):
        assert parse_triples("R,0,1\n\nS,1,2;") == [("R", 0, 1), ("S", 1, 2)]

    def test_malformed(self):
        with pytest.raises(ValueError):
            parse_triples("R,0")


class TestCli:
    def test_classify(self, capsys):
        assert main(["classify", "RRX", "ARRX"]) == 0
        out = capsys.readouterr().out
        assert "NL-complete" in out and "coNP-complete" in out

    def test_solve_yes(self, capsys):
        code = main(
            ["solve", "RRX", "--triples", "R,0,1;R,1,2;R,1,3;R,2,3;X,3,4"]
        )
        assert code == 0
        assert "certain" in capsys.readouterr().out

    def test_solve_no_exit_code(self, capsys):
        code = main(["solve", "RRR", "--triples", "R,0,1", "-v"])
        assert code == 1
        assert "not certain" in capsys.readouterr().out

    def test_solve_requires_facts(self):
        with pytest.raises(SystemExit):
            main(["solve", "RRX"])

    def test_answers(self, capsys):
        assert main(
            ["answers", "RR", "--triples", "R,0,1;R,1,2;R,2,3"]
        ) == 0
        out = capsys.readouterr().out
        assert "[0, 1]" in out

    def test_answers_tail(self, capsys):
        assert main(
            ["answers", "RR", "--triples", "R,0,1;R,1,2;R,2,3",
             "--position", "tail"]
        ) == 0
        assert "[2, 3]" in capsys.readouterr().out

    def test_atlas(self, capsys):
        assert main(["atlas"]) == 0
        out = capsys.readouterr().out
        assert "RXRXRYRY" in out

    def test_report(self, capsys):
        assert main(["report", "--trials", "3"]) == 0
        out = capsys.readouterr().out
        assert "E9" in out and "E8" in out and "E10" in out

    def test_facts_file(self, tmp_path, capsys):
        path = tmp_path / "facts.txt"
        path.write_text("R,0,1\nR,1,2\n")
        assert main(["solve", "RR", "--facts", str(path)]) == 0


class TestExperimentDrivers:
    def test_classification_rows_all_match(self):
        rows = classification_rows()
        assert rows
        assert all(row["matches_paper"] for row in rows)

    def test_classification_table_renders(self):
        text = classification_table()
        assert "UVUVWV" in text
        markdown = classification_table(markdown=True)
        assert markdown.startswith("|")

    def test_fixpoint_scaling_rows(self):
        rows = fixpoint_scaling_rows("RRX", sizes=[20, 40], repeats=1)
        assert [row["facts"] for row in rows] == sorted(
            row["facts"] for row in rows
        )
        assert all(row["seconds"] >= 0 for row in rows)

    def test_crossover_rows(self):
        rows = crossover_rows(repetitions=(2, 3), repeats=1)
        assert len(rows) == 2
        assert all(row["brute_seconds"] is not None for row in rows)

    def test_full_report_agrees(self):
        for row in full_report(trials=4, seed=1):
            assert row["agree"] == row["trials"]


class TestHarness:
    def test_time_call(self):
        result, seconds = time_call(lambda: 42, repeats=2)
        assert result == 42
        assert seconds >= 0

    def test_table_render(self):
        table = Table(["a", "b"])
        table.add_row([1, "xy"])
        text = table.render()
        assert "a" in text and "xy" in text

    def test_table_markdown(self):
        table = Table(["a"])
        table.add_row(["v"])
        assert table.render(markdown=True).count("|") >= 4

    def test_table_row_width_checked(self):
        table = Table(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row([1])
