"""Tests for repair enumeration, counting, sampling."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.db.facts import Fact
from repro.db.instance import DatabaseInstance
from repro.db.repairs import (
    count_repairs,
    iter_repairs,
    random_repair,
    repair_signature,
    resolve_block,
)
from repro.workloads.generators import random_instance


def small_instances():
    def build(seed):
        rng = random.Random(seed)
        return random_instance(rng, 4, rng.randint(1, 8), ("R", "S"), 0.5)

    return st.integers(min_value=0, max_value=10_000).map(build)


class TestCounting:
    def test_count_is_product_of_block_sizes(self):
        db = DatabaseInstance.from_triples(
            [("R", 0, 1), ("R", 0, 2), ("R", 0, 3), ("S", 0, 1), ("S", 0, 2)]
        )
        assert count_repairs(db) == 6

    def test_consistent_instance_has_one_repair(self):
        db = DatabaseInstance.from_triples([("R", 0, 1), ("R", 1, 2)])
        assert count_repairs(db) == 1
        assert list(iter_repairs(db)) == [db]

    def test_empty_instance(self):
        db = DatabaseInstance.empty()
        assert count_repairs(db) == 1
        assert list(iter_repairs(db)) == [db]


class TestEnumeration:
    def test_all_repairs_are_repairs(self):
        db = DatabaseInstance.from_triples(
            [("R", 0, 1), ("R", 0, 2), ("S", 1, 0), ("S", 1, 2)]
        )
        repairs = list(iter_repairs(db))
        assert len(repairs) == count_repairs(db) == 4
        assert len(set(repairs)) == 4
        for repair in repairs:
            assert repair.is_repair_of(db)

    def test_limit(self):
        db = DatabaseInstance.from_triples(
            [("R", 0, 1), ("R", 0, 2), ("S", 1, 0), ("S", 1, 2)]
        )
        assert len(list(iter_repairs(db, limit=3))) == 3

    @settings(max_examples=40, deadline=None)
    @given(small_instances())
    def test_enumeration_matches_count(self, db):
        if count_repairs(db) > 500:
            return
        repairs = list(iter_repairs(db))
        assert len(repairs) == count_repairs(db)
        assert len(set(repairs)) == len(repairs)


class TestSamplingAndSignatures:
    def test_random_repair_is_repair(self, rng):
        db = DatabaseInstance.from_triples(
            [("R", 0, 1), ("R", 0, 2), ("S", 1, 0), ("S", 1, 2), ("T", 2, 2)]
        )
        for _ in range(20):
            assert random_repair(db, rng).is_repair_of(db)

    def test_signature_roundtrip(self):
        db = DatabaseInstance.from_triples(
            [("R", 0, 1), ("R", 0, 2), ("S", 1, 0), ("S", 1, 2)]
        )
        signatures = {repair_signature(db, r) for r in iter_repairs(db)}
        assert len(signatures) == 4

    def test_signature_rejects_non_repair(self):
        db = DatabaseInstance.from_triples([("R", 0, 1), ("R", 0, 2)])
        with pytest.raises(ValueError):
            repair_signature(db, db)

    def test_resolve_block(self):
        db = DatabaseInstance.from_triples([("R", 0, 1), ("R", 0, 2), ("S", 3, 4)])
        repair = DatabaseInstance.from_triples([("R", 0, 1), ("S", 3, 4)])
        swapped = resolve_block(repair, Fact("R", 0, 2))
        assert Fact("R", 0, 2) in swapped
        assert Fact("R", 0, 1) not in swapped
        assert swapped.is_repair_of(db)
