"""Tests for generalized path queries, char(q), ext(q) (Section 8)."""

import pytest

from repro.queries.generalized import (
    GeneralizedPathQuery,
    TerminalWord,
    has_homomorphism,
    has_prefix_homomorphism,
    homomorphism_offsets,
)
from repro.words.word import Word


class TestConstruction:
    def test_constant_free(self):
        q = GeneralizedPathQuery("RS")
        assert q.is_path_query()
        assert q.constants() == []

    def test_constants_on_nodes(self):
        q = GeneralizedPathQuery("RS", {2: 0})
        assert q.constants() == [0]
        assert not q.is_path_query()

    def test_duplicate_constants_rejected(self):
        with pytest.raises(ValueError):
            GeneralizedPathQuery("RST", {0: "c", 2: "c"})

    def test_node_count_validated(self):
        with pytest.raises(ValueError):
            GeneralizedPathQuery("RS", nodes=[None, None])

    def test_str_rendering(self):
        q = GeneralizedPathQuery("RS", {2: 0})
        assert str(q) == "{R(x1, x2), S(x2, 0)}"


class TestCharAndSegments:
    def test_example8(self):
        """Example 8: q = R(x,y), S(y,0), T(0,1), R(1,w) has
        char(q) = {R(x,y), S(y,0)}."""
        q = GeneralizedPathQuery(["R", "S", "T", "R"], {2: 0, 3: 1})
        char = q.char()
        assert char.word == Word("RS")
        assert char.terminal == 0
        assert q.char_length() == 2

    def test_char_of_constant_free_query(self):
        q = GeneralizedPathQuery("RRX")
        char = q.char()
        assert char.word == Word("RRX")
        assert char.terminal is None

    def test_char_empty_when_rooted(self):
        q = GeneralizedPathQuery("RS", {0: "c"})
        assert q.char().word == Word("")
        assert q.char().terminal == "c"

    def test_segments_example8(self):
        q = GeneralizedPathQuery(["R", "S", "T", "R"], {2: 0, 3: 1})
        segments = q.segments()
        assert len(segments) == 2
        assert (segments[0].root, str(segments[0].word), segments[0].end) == (0, "T", 1)
        assert (segments[1].root, str(segments[1].word), segments[1].end) == (1, "R", None)

    def test_remainder(self):
        q = GeneralizedPathQuery(["R", "S", "T", "R"], {2: 0, 3: 1})
        remainder = q.remainder()
        assert remainder.word == Word("TR")


class TestExt:
    def test_example10(self):
        """Example 10: ext of R(x,y),S(y,0),T(0,1),R(1,w) is R,S,N."""
        q = GeneralizedPathQuery(["R", "S", "T", "R"], {2: 0, 3: 1})
        ext = q.ext()
        assert ext.word == Word(["R", "S", "N"])

    def test_ext_constant_free_is_identity(self):
        q = GeneralizedPathQuery("RRX")
        assert q.ext().word == Word("RRX")

    def test_ext_fresh_name_uniquified(self):
        q = GeneralizedPathQuery(["N", "S"], {2: 0})
        ext = q.ext()
        assert ext.word[-1] not in ("N",)


class TestTerminalWordHomomorphisms:
    def test_plain_factor_homomorphism(self):
        source = TerminalWord(Word("RX"))
        target = TerminalWord(Word("ARXB"))
        assert homomorphism_offsets(source, target) == [1]
        assert has_homomorphism(source, target)
        assert not has_prefix_homomorphism(source, target)

    def test_prefix_homomorphism(self):
        source = TerminalWord(Word("RX"))
        target = TerminalWord(Word("RXY"))
        assert has_prefix_homomorphism(source, target)

    def test_constant_pins_suffix(self):
        # With a terminal constant the occurrence must end at the end.
        source = TerminalWord(Word("RX"), 0)
        assert has_homomorphism(source, TerminalWord(Word("ARX"), 0))
        assert not has_homomorphism(source, TerminalWord(Word("RXY"), 0))
        assert not has_homomorphism(source, TerminalWord(Word("ARX"), 1))

    def test_example9(self):
        """Example 9: hom from char(q) = [[RR, 1]] to [[RRR, 1]] exists,
        prefix hom does not."""
        source = TerminalWord(Word("RR"), 1)
        target = TerminalWord(Word("RRR"), 1)
        assert has_homomorphism(source, target)
        assert not has_prefix_homomorphism(source, target)
