"""Tests for the FO solver strategies and the brute-force baseline."""

import pytest

from repro.db.instance import DatabaseInstance
from repro.db.repairs import count_repairs
from repro.solvers.brute_force import certain_answer_brute_force
from repro.solvers.fo_solver import certain_answer_fo
from repro.workloads.generators import random_instance
from repro.workloads.paper_instances import intro_rr_fo_instance


class TestFoSolver:
    def test_rejects_non_c1(self):
        db = intro_rr_fo_instance()
        with pytest.raises(ValueError):
            certain_answer_fo(db, "RRX")

    def test_strategies_agree(self, rng):
        for _ in range(25):
            db = random_instance(rng, 4, rng.randint(2, 8), ("R", "X"), 0.5)
            for q in ("RR", "RXRX"):
                direct = certain_answer_fo(db, q, strategy="direct")
                formula = certain_answer_fo(db, q, strategy="formula")
                assert direct.answer == formula.answer

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            certain_answer_fo(intro_rr_fo_instance(), "RR", strategy="magic")

    def test_witness_constant(self):
        db = intro_rr_fo_instance()
        result = certain_answer_fo(db, "RR")
        assert result.answer
        assert result.witness_constant in db.adom()

    def test_unsound_without_check(self):
        """With check=False the FO sentence over-approximates on the
        Figure 2 instance: the sentence is false although the instance is
        a yes-instance of CERTAINTY(RRX)."""
        from repro.workloads.paper_instances import figure2_instance

        result = certain_answer_fo(figure2_instance(), "RRX", check=False)
        assert not result.answer  # the over-strict FO answer

    def test_no_answer_has_certificate(self, rng):
        from repro.db.evaluation import path_query_satisfied

        found = 0
        for _ in range(40):
            db = random_instance(rng, 4, rng.randint(2, 8), ("R", "X"), 0.6)
            result = certain_answer_fo(db, "RXRX")
            if not result.answer:
                found += 1
                assert result.falsifying_repair.is_repair_of(db)
                assert not path_query_satisfied("RXRX", result.falsifying_repair)
        assert found > 0

    def test_differential_vs_brute(self, rng):
        for _ in range(30):
            db = random_instance(rng, 4, rng.randint(2, 10), ("R", "X"), 0.5)
            if count_repairs(db) > 3000:
                continue
            for q in ("RR", "RX", "RXRX"):
                expected = certain_answer_brute_force(db, q).answer
                assert certain_answer_fo(db, q).answer == expected


class TestBruteForce:
    def test_counts_repairs(self):
        db = DatabaseInstance.from_triples(
            [("R", 0, 1), ("R", 0, 2), ("R", 1, 3)]
        )
        result = certain_answer_brute_force(db, "RR")
        assert result.details["repairs_total"] == 2

    def test_early_exit_on_no(self):
        db = DatabaseInstance.from_triples(
            [("R", 0, 1), ("R", 0, 2), ("S", 5, 6), ("S", 5, 7)]
        )
        result = certain_answer_brute_force(db, "RR")
        assert not result.answer
        assert result.details["repairs_checked"] <= result.details["repairs_total"]
        assert result.falsifying_repair is not None

    def test_limit_guard(self):
        facts = []
        for block in range(25):
            facts += [("R", block, 0), ("R", block, 1)]
        db = DatabaseInstance.from_triples(facts)
        with pytest.raises(RuntimeError):
            certain_answer_brute_force(db, "RR", repair_limit=1000)

    def test_unsupported_query_type(self):
        with pytest.raises(TypeError):
            certain_answer_brute_force(DatabaseInstance.empty(), 42)

    def test_conjunctive_query_support(self):
        from repro.queries.atoms import Atom, Variable
        from repro.queries.conjunctive import ConjunctiveQuery

        x = Variable("x")
        q = ConjunctiveQuery([Atom("R", x, x)])
        db = DatabaseInstance.from_triples([("R", 0, 0), ("R", 0, 1)])
        assert not certain_answer_brute_force(db, q).answer
        db2 = DatabaseInstance.from_triples([("R", 0, 0)])
        assert certain_answer_brute_force(db2, q).answer


class TestResultRendering:
    def test_str_yes(self):
        db = intro_rr_fo_instance()
        text = str(certain_answer_fo(db, "RR"))
        assert "certain" in text and "fo" in text

    def test_str_no_with_certificate(self):
        db = DatabaseInstance.from_triples([("R", 0, 1), ("R", 0, 2)])
        text = str(certain_answer_brute_force(db, "RR"))
        assert "not certain" in text
        assert "falsifying repair" in text
