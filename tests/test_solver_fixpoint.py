"""Tests for the Figure 5 fixpoint algorithm (Lemmas 7, 9, 10)."""

import pytest

from repro.db.evaluation import path_query_satisfied
from repro.db.instance import DatabaseInstance
from repro.db.repairs import count_repairs, iter_repairs
from repro.solvers.brute_force import certain_answer_brute_force
from repro.solvers.fixpoint import (
    build_minimal_repair,
    certain_answer_fixpoint,
    fixpoint_relation,
)
from repro.workloads.generators import random_instance
from repro.workloads.paper_instances import (
    figure2_instance,
    figure3_instance,
    figure6_instance,
)


class TestFigure6Run:
    def test_paper_derivations_present(self):
        """The Figure 6 table's tuples are all derived (plus the further
        tuples the iteration keeps producing, e.g. <1, ε>)."""
        db = figure6_instance()
        n = fixpoint_relation(db, "RRX")
        # Initialization: <c, RRX> for all six constants.
        for c in range(6):
            assert (c, 3) in n
        # Iterations 1-5 of the paper's table.
        assert (4, 2) in n
        for c in (3, 2, 1, 0):
            assert (c, 1) in n and (c, 2) in n
        assert (0, 0) in n

    def test_no_spurious_constants(self):
        db = figure6_instance()
        n = fixpoint_relation(db, "RRX")
        # 5 has no outgoing facts: nothing below <5, RRX> is derivable.
        assert (5, 2) not in n and (5, 1) not in n and (5, 0) not in n
        # 4 has only the X-edge: <4, R> needs an R-block.
        assert (4, 1) not in n

    def test_yes_with_witness(self):
        result = certain_answer_fixpoint(figure6_instance(), "RRX")
        assert result.answer
        assert result.witness_constant == 0


class TestFigures2And3:
    def test_figure2_yes(self):
        result = certain_answer_fixpoint(figure2_instance(), "RRX")
        assert result.answer
        assert result.witness_constant == 0

    def test_figure3_requires_c3(self):
        """ARRX violates C3: a bare fixpoint 'yes' must raise."""
        with pytest.raises(ValueError):
            certain_answer_fixpoint(figure3_instance(), "ARRX")

    def test_figure3_unsound_yes(self):
        """Figure 3's point: the fixpoint condition holds although the
        instance is a 'no'-instance -- C3 is necessary for Lemma 7."""
        result = certain_answer_fixpoint(
            figure3_instance(), "ARRX", require_c3=False
        )
        assert result.answer
        assert result.details["sound"] is False
        assert not certain_answer_brute_force(figure3_instance(), "ARRX").answer


class TestAgainstBruteForce:
    @pytest.mark.parametrize("q", ["RR", "RRX", "RXRX", "RXRY", "RXRYRY", "RXRRR"])
    def test_differential(self, q, rng):
        """Complete for C3 queries (all listed satisfy C3)."""
        alphabet = sorted(set(q))
        for _ in range(40):
            db = random_instance(rng, 4, rng.randint(2, 10), alphabet, 0.5)
            if count_repairs(db) > 4000:
                continue
            expected = certain_answer_brute_force(db, q).answer
            assert certain_answer_fixpoint(db, q).answer == expected


class TestMinimalRepair:
    def test_is_repair(self, rng):
        for _ in range(20):
            db = random_instance(rng, 4, rng.randint(2, 9), ("R", "X"), 0.5)
            assert build_minimal_repair(db, "RRX").is_repair_of(db)

    def test_no_certificate_falsifies(self, rng):
        """On 'no' instances the constructed repair falsifies the query --
        for every query, C3 or not (Lemma 10's direction ⇐)."""
        for q in ("RRX", "ARRX", "RXRYRY"):
            found = 0
            for _ in range(80):
                db = random_instance(rng, 4, rng.randint(3, 10), sorted(set(q)), 0.6)
                result = certain_answer_fixpoint(db, q, require_c3=False)
                if not result.answer:
                    found += 1
                    assert result.falsifying_repair.is_repair_of(db)
                    assert not path_query_satisfied(q, result.falsifying_repair)
            assert found > 0  # the sweep hit "no" instances

    def test_empty_query(self):
        db = DatabaseInstance.from_triples([("R", 0, 1)])
        n = fixpoint_relation(db, "")
        assert (0, 0) in n and (1, 0) in n
