"""Unit tests for the Word type."""

import pytest

from repro.words.word import EPSILON, Word, concat


class TestConstruction:
    def test_from_string_splits_characters(self):
        assert Word("RRX").symbols == ("R", "R", "X")

    def test_from_sequence(self):
        assert Word(["R", "N1"]).symbols == ("R", "N1")

    def test_from_word_is_identity(self):
        w = Word("RX")
        assert Word(w) == w

    def test_epsilon(self):
        assert len(Word.epsilon()) == 0
        assert not Word.epsilon()
        assert EPSILON == Word("")

    def test_empty_symbol_rejected(self):
        with pytest.raises(ValueError):
            Word([""])

    def test_coerce(self):
        assert Word.coerce("RX") == Word(["R", "X"])


class TestSequenceProtocol:
    def test_len_and_iter(self):
        w = Word("RXY")
        assert len(w) == 3
        assert list(w) == ["R", "X", "Y"]

    def test_indexing(self):
        w = Word("RXY")
        assert w[0] == "R"
        assert w[-1] == "Y"

    def test_slicing_returns_word(self):
        w = Word("RXY")
        assert w[1:] == Word("XY")
        assert isinstance(w[1:], Word)

    def test_contains(self):
        assert "R" in Word("RX")
        assert "Z" not in Word("RX")


class TestAlgebra:
    def test_concatenation(self):
        assert Word("RX") + Word("Y") == Word("RXY")

    def test_concatenation_with_string(self):
        assert Word("RX") + "Y" == Word("RXY")
        assert "Y" + Word("RX") == Word("YRX")

    def test_repetition(self):
        assert Word("RX") * 3 == Word("RXRXRX")
        assert Word("RX") * 0 == EPSILON

    def test_negative_repetition_rejected(self):
        with pytest.raises(ValueError):
            Word("R") * -1

    def test_concat_helper(self):
        assert concat(["RX", Word("Y"), ""]) == Word("RXY")


class TestEqualityAndHash:
    def test_equality_with_string(self):
        assert Word("RX") == "RX"

    def test_hashable(self):
        assert len({Word("RX"), Word("RX"), Word("XR")}) == 2

    def test_length_lex_order(self):
        assert Word("Z") < Word("AA")
        assert Word("AB") < Word("AC")


class TestAccessors:
    def test_first_last(self):
        w = Word("RXY")
        assert w.first() == "R"
        assert w.last() == "Y"

    def test_first_of_empty_raises(self):
        with pytest.raises(ValueError):
            EPSILON.first()
        with pytest.raises(ValueError):
            EPSILON.last()

    def test_alphabet(self):
        assert Word("RRX").alphabet() == frozenset({"R", "X"})

    def test_positions_and_count(self):
        w = Word("RXRRX")
        assert w.positions_of("R") == (0, 2, 3)
        assert w.count("X") == 2

    def test_str_compact(self):
        assert str(Word("RRX")) == "RRX"

    def test_str_multichar(self):
        assert str(Word(["R", "N1"])) == "R N1"

    def test_repr_roundtrip(self):
        w = Word("RXY")
        assert eval(repr(w)) == w
