"""Regression tests for the coNP route: prefilter soundness and result
freshness.

The coNP dispatch (``conp_solve``) runs the Figure 5 fixpoint algorithm
as a pre-filter: by Lemma 10 its "no" answers are sound for *every* path
query (the Lemma 9 minimal repair falsifies q), so SAT only runs on
fixpoint-"yes" instances.  These tests pin

* fixpoint-"no" implies SAT-"no" on coNP-hard queries, including the
  Figure 3 counterexample family where the *yes* direction overshoots;
* the pre-filter path returns a *fresh* ``CertaintyResult`` -- no
  ``method``/``details`` state is aliased across calls of a cached plan.
"""

import random

import pytest

from repro.db.instance import DatabaseInstance
from repro.engine import CertaintyEngine, conp_solve
from repro.solvers.certainty import _conp_solve, certain_answer
from repro.solvers.fixpoint import certain_answer_fixpoint
from repro.solvers.sat_encoding import certain_answer_sat
from repro.words.word import Word
from repro.workloads.generators import planted_instance, random_instance
from repro.workloads.paper_instances import figure3_instance

CONP_QUERIES = ["ARRX", "RXRXRYRY", "RRXRRX"]


def bifurcation_instance(depth, copies=1):
    """The Figure 3 family: ``copies`` disjoint bifurcation gadgets.

    Each gadget forks at ``a``: the ``b`` branch carries an exact ARRX
    path; the ``c`` branch carries ``A R^depth X`` with ``depth != 2``
    R-steps after the fork, so the repair choosing ``R(a, c)`` falsifies
    ARRX while every repair keeps a path with trace in ``ARR(R)*X``.
    """
    assert depth >= 3
    triples = []
    for g in range(copies):
        p = "g{}_".format(g)
        triples += [
            ("A", p + "0", p + "a"),
            ("R", p + "a", p + "b"),
            ("R", p + "a", p + "c"),
            ("R", p + "b", p + "b1"),
            ("X", p + "b1", p + "b2"),
        ]
        prev = p + "c"
        for i in range(1, depth):
            triples.append(("R", prev, p + "c{}".format(i)))
            prev = p + "c{}".format(i)
        triples.append(("X", prev, p + "sink"))
    return DatabaseInstance.from_triples(triples)


class TestFigure3Family:
    def test_figure3_is_fixpoint_yes_sat_no(self):
        db = figure3_instance()
        unsound = certain_answer_fixpoint(db, "ARRX", require_c3=False)
        assert unsound.answer and unsound.details["sound"] is False
        assert not certain_answer_sat(db, "ARRX").answer
        result = certain_answer(db, "ARRX")
        assert not result.answer
        assert result.method == "sat"
        assert result.details["prefilter"] == "fixpoint-yes"

    @pytest.mark.parametrize("depth", [3, 4, 5])
    @pytest.mark.parametrize("copies", [1, 2])
    def test_family_prefilter_cannot_say_no(self, depth, copies):
        db = bifurcation_instance(depth, copies)
        unsound = certain_answer_fixpoint(db, "ARRX", require_c3=False)
        assert unsound.answer, "the gadget must fool the fixpoint"
        result = conp_solve(db, "ARRX")
        assert not result.answer
        assert result.method == "sat"
        # The certificate must be a genuine falsifying repair.
        assert result.falsifying_repair.is_repair_of(db)

    def test_engine_auto_matches_sat_on_family(self):
        engine = CertaintyEngine()
        for depth in (3, 4):
            db = bifurcation_instance(depth)
            assert (
                engine.solve(db, "ARRX").answer
                == certain_answer_sat(db, "ARRX").answer
            )


class TestPrefilterSoundness:
    @pytest.mark.parametrize("query", CONP_QUERIES)
    def test_fixpoint_no_implies_sat_no(self, query):
        rng = random.Random(0xC09)
        alphabet = sorted(set(query))
        prefilter_nos = 0
        for _ in range(30):
            db = random_instance(rng, 4, rng.randint(2, 12), alphabet, 0.5)
            fixpoint = certain_answer_fixpoint(db, query, require_c3=False)
            if not fixpoint.answer:
                prefilter_nos += 1
                assert not certain_answer_sat(db, query).answer, (query, db)
        assert prefilter_nos > 0, "workload never exercised the prefilter"

    @pytest.mark.parametrize("query", CONP_QUERIES)
    def test_conp_solve_matches_sat(self, query):
        rng = random.Random(0x5A7)
        for _ in range(10):
            db = planted_instance(
                rng, query, rng.randint(2, 5),
                n_paths=1, n_noise_facts=rng.randint(0, 6), conflict_rate=0.5,
            )
            assert (
                conp_solve(db, query).answer
                == certain_answer_sat(db, query).answer
            ), (query, db)


class TestResultFreshness:
    def _no_instance(self):
        # Empty-ish instance: the prefilter answers "no" immediately.
        return DatabaseInstance.from_triples([("R", 0, 1)])

    def test_conp_solve_returns_fresh_result(self):
        db = self._no_instance()
        q = Word("ARRX")
        first = _conp_solve(db, q)
        second = _conp_solve(db, q)
        assert first.method == second.method == "fixpoint-prefilter"
        assert first.details is not second.details
        assert first is not second

    def test_prefilter_result_not_aliased_with_fixpoint(self):
        db = self._no_instance()
        q = Word("ARRX")
        fixpoint = certain_answer_fixpoint(db, q, require_c3=False)
        filtered = conp_solve(db, q)
        assert filtered.method == "fixpoint-prefilter"
        assert fixpoint.method == "fixpoint"
        assert filtered.details is not fixpoint.details

    def test_cached_plan_details_not_aliased_across_calls(self):
        engine = CertaintyEngine()
        db = self._no_instance()
        results = [engine.solve(db, "ARRX") for _ in range(2)]
        assert results[0].details is not results[1].details
        results[0].details["marker"] = "first"
        assert "marker" not in results[1].details
        # Same guarantee on the SAT path of the cached plan.
        fig3 = [engine.solve(figure3_instance(), "ARRX") for _ in range(2)]
        assert fig3[0].details is not fig3[1].details

    def test_auto_and_prefilter_details_consistent(self):
        result = certain_answer(self._no_instance(), "ARRX")
        assert result.method == "fixpoint-prefilter"
        assert result.details["complexity"] == "coNP-complete"
        assert result.falsifying_repair is not None
