"""The StateCache extracted from the engine: checkout, LRU, counters."""

import threading

import pytest

from repro.solvers.state_cache import StateCache


class TestStateCache:
    def test_take_checks_out(self):
        cache = StateCache(max_size=4)
        state = object()
        cache.put("k", state)
        assert cache.take("k") is state
        assert cache.take("k") is None  # checked out, not shared
        assert cache.info()["hits"] == 1
        assert cache.info()["misses"] == 1

    def test_peek_leaves_entry(self):
        cache = StateCache(max_size=4)
        state = object()
        cache.put("k", state)
        assert cache.peek("k") is state
        assert cache.peek("k") is state
        assert cache.take("k") is state
        assert cache.info()["hits"] == 3

    def test_lru_eviction_order(self):
        cache = StateCache(max_size=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.peek("a") == 1  # refresh a -> b is now LRU
        cache.put("c", 3)
        assert cache.take("b") is None
        assert cache.take("a") == 1
        assert cache.take("c") == 3
        assert cache.info()["evictions"] == 1

    def test_zero_size_disables(self):
        cache = StateCache(max_size=0)
        cache.put("k", object())
        assert len(cache) == 0
        assert cache.take("k") is None

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            StateCache(max_size=-1)

    def test_clear_resets_counters(self):
        cache = StateCache(max_size=2)
        cache.put("a", 1)
        cache.take("a")
        cache.take("a")
        cache.clear()
        info = cache.info()
        assert info == {
            "size": 0,
            "max_size": 2,
            "hits": 0,
            "misses": 0,
            "puts": 0,
            "evictions": 0,
        }

    def test_concurrent_take_yields_single_owner(self):
        cache = StateCache(max_size=4)
        cache.put("k", object())
        winners = []
        barrier = threading.Barrier(8)

        def racer():
            barrier.wait()
            state = cache.take("k")
            if state is not None:
                winners.append(state)

        threads = [threading.Thread(target=racer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(winners) == 1  # checkout semantics: one owner


class TestEngineStateCacheWiring:
    def test_engine_exposes_state_cache(self):
        from repro.db.delta import Delta
        from repro.engine import CertaintyEngine
        from repro.db.instance import DatabaseInstance

        engine = CertaintyEngine(state_cache_size=8)
        db = DatabaseInstance.from_triples(
            [("R", 0, 1), ("R", 1, 2), ("X", 2, 3)]
        )
        engine.solve_delta(db, Delta(), "RRX")
        assert len(engine.state_cache) == 1
        assert engine.cache_info()["states"]["size"] == 1
        engine.solve_delta(db, Delta(), "RRX")
        assert engine.state_cache.hits == 1
        engine.clear_cache()
        assert len(engine.state_cache) == 0

    def test_engine_zero_state_cache_still_correct(self):
        from repro.db.delta import Delta
        from repro.engine import CertaintyEngine
        from repro.db.instance import DatabaseInstance

        engine = CertaintyEngine(state_cache_size=0)
        db = DatabaseInstance.from_triples(
            [("R", 0, 1), ("R", 1, 2), ("X", 2, 3)]
        )
        first = engine.solve_delta(db, Delta(), "RRX")
        second = engine.solve_delta(db, Delta(), "RRX")
        assert first.answer is True and second.answer is True
        assert engine.stats.full_resolves == 2  # nothing retained
