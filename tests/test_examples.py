"""Smoke tests: every example script runs end-to-end (with its asserts)."""

import importlib.util
import pathlib

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

EXAMPLES = [
    "quickstart",
    "data_integration_audit",
    "complexity_atlas",
    "solver_showdown",
    "hardness_gadgets",
    "repair_statistics",
]


def _load_main(name):
    path = EXAMPLES_DIR / "{}.py".format(name)
    spec = importlib.util.spec_from_file_location("example_" + name, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.main


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, capsys):
    main = _load_main(name)
    main()
    out = capsys.readouterr().out
    assert out.strip(), "example {} produced no output".format(name)
