"""Tests for the DPLL solver and the CAvSAT-style encoding."""

import itertools

import pytest

from repro.cnf.formula import random_ksat
from repro.db.evaluation import path_query_satisfied
from repro.db.instance import DatabaseInstance
from repro.db.repairs import count_repairs
from repro.solvers.brute_force import certain_answer_brute_force
from repro.solvers.sat import is_satisfiable, solve_clauses
from repro.solvers.sat_encoding import (
    certain_answer_sat,
    encode_falsifying_repair,
)
from repro.workloads.generators import random_instance
from repro.workloads.paper_instances import figure2_instance, figure3_instance


class TestDpll:
    def test_simple_sat(self):
        model = solve_clauses([[1, 2], [-1, 2], [1, -2]])
        assert model is not None
        assert model[1] or model[2]

    def test_simple_unsat(self):
        assert solve_clauses([[1], [-1]]) is None
        assert solve_clauses([[1, 2], [-1, 2], [1, -2], [-1, -2]]) is None

    def test_empty_formula_sat(self):
        assert solve_clauses([]) == {}

    def test_tautologies_dropped(self):
        assert solve_clauses([[1, -1]]) is not None

    def test_zero_literal_rejected(self):
        with pytest.raises(ValueError):
            solve_clauses([[0]])

    def test_models_satisfy(self, rng):
        for _ in range(40):
            formula = random_ksat(rng.randint(3, 6), rng.randint(1, 15), 3, rng)
            clauses, numbering = formula.to_int_clauses()
            model = solve_clauses(clauses)
            if model is None:
                continue
            for clause in clauses:
                assert any(
                    (lit > 0) == model.get(abs(lit), False) for lit in clause
                )

    def test_against_truth_table(self, rng):
        for _ in range(50):
            formula = random_ksat(rng.randint(2, 4), rng.randint(1, 10), 2, rng)
            assert formula.is_satisfiable() == formula.brute_force_satisfiable()


class TestEncoding:
    def test_block_clauses_present(self):
        db = DatabaseInstance.from_triples([("R", 0, 1), ("R", 0, 2)])
        clauses, var_fact = encode_falsifying_repair(db, "R")
        assert len(var_fact) == 2
        # one at-least-one clause + one blocking clause per fact.
        assert [1, 2] in clauses or [2, 1] in clauses

    def test_at_most_one_ablation(self):
        db = DatabaseInstance.from_triples([("R", 0, 1), ("R", 0, 2)])
        plain, _ = encode_falsifying_repair(db, "R", at_most_one=False)
        amo, _ = encode_falsifying_repair(db, "R", at_most_one=True)
        assert len(amo) > len(plain)

    def test_figure_instances(self):
        assert certain_answer_sat(figure2_instance(), "RRX").answer
        result = certain_answer_sat(figure3_instance(), "ARRX")
        assert not result.answer
        assert result.falsifying_repair is not None
        assert not path_query_satisfied("ARRX", result.falsifying_repair)

    @pytest.mark.parametrize("q", ["RRX", "ARRX", "RXRXRYRY", "RXRYRY"])
    def test_differential(self, q, rng):
        for _ in range(30):
            db = random_instance(rng, 4, rng.randint(2, 10), sorted(set(q)), 0.5)
            if count_repairs(db) > 4000:
                continue
            expected = certain_answer_brute_force(db, q).answer
            for at_most_one in (False, True):
                result = certain_answer_sat(db, q, at_most_one=at_most_one)
                assert result.answer == expected
                if not result.answer:
                    assert result.falsifying_repair.is_repair_of(db)
                    assert not path_query_satisfied(q, result.falsifying_repair)

    def test_generalized_query_encoding(self, rng):
        from repro.queries.generalized import GeneralizedPathQuery

        q = GeneralizedPathQuery("RS", {2: 1})
        for _ in range(20):
            db = random_instance(rng, 3, rng.randint(2, 8), ("R", "S"), 0.5)
            expected = certain_answer_brute_force(db, q).answer
            assert certain_answer_sat(db, q).answer == expected
