"""Shared fixtures for the test-suite."""

import random

import pytest

from repro.words.word import Word


@pytest.fixture
def rng():
    """A deterministically seeded RNG; reseeded per test."""
    return random.Random(0xC0FFEE)


#: The paper's named queries and their proven complexity classes
#: (Examples 1-3, Figures 2-4, Claim 5, Lemma 3).
PAPER_TABLE = [
    ("RR", "FO"),
    ("RRX", "NL-complete"),
    ("ARRX", "coNP-complete"),
    ("RXRX", "FO"),
    ("RXRY", "NL-complete"),
    ("RXRYRY", "PTIME-complete"),
    ("RXRXRYRY", "coNP-complete"),
    ("RXRRR", "PTIME-complete"),
    ("RRSRS", "PTIME-complete"),
    ("RSRRR", "PTIME-complete"),
    ("UVUVWV", "NL-complete"),
    ("RXRYR", "NL-complete"),
]


def random_word(rng, max_length=8, alphabet="RSX"):
    length = rng.randint(0, max_length)
    return Word("".join(rng.choice(alphabet) for _ in range(length)))
