"""Tests for paths, traces, consistency, terminals (Defs 6, 15, Lemma 17)."""

import random

from repro.db.facts import Fact
from repro.db.instance import DatabaseInstance
from repro.db.paths import (
    find_path_with_trace,
    has_path_with_trace,
    is_consistent_path,
    is_path,
    is_terminal,
    iter_paths_with_trace,
    rooted_certainty,
    trace_of,
)
from repro.db.repairs import iter_repairs
from repro.db.evaluation import rooted_path_query_satisfied
from repro.workloads.generators import random_instance
from repro.workloads.paper_instances import example7_instance
from repro.words.word import Word


class TestPathBasics:
    def test_trace(self):
        path = (Fact("R", 0, 1), Fact("X", 1, 2))
        assert trace_of(path) == Word("RX")
        assert is_path(path)

    def test_not_a_path(self):
        assert not is_path((Fact("R", 0, 1), Fact("X", 2, 3)))

    def test_consistency(self):
        consistent = (Fact("R", 0, 1), Fact("R", 1, 0), Fact("R", 0, 1))
        assert is_consistent_path(consistent)  # repetition of same fact OK
        inconsistent = (Fact("R", 0, 1), Fact("R", 0, 2))
        assert not is_consistent_path(inconsistent)


class TestPathSearch:
    def setup_method(self):
        self.db = DatabaseInstance.from_triples(
            [("R", 0, 1), ("R", 1, 2), ("X", 2, 3), ("R", 1, 0)]
        )

    def test_iter_paths(self):
        paths = list(iter_paths_with_trace(self.db, "RRX"))
        assert len(paths) == 1
        assert paths[0][0] == Fact("R", 0, 1)

    def test_start_filter(self):
        assert has_path_with_trace(self.db, "RX", start=1)
        assert not has_path_with_trace(self.db, "RX", start=0)

    def test_end_filter(self):
        assert has_path_with_trace(self.db, "RRX", end=3)
        assert not has_path_with_trace(self.db, "RRX", end=2)

    def test_cyclic_walk_allows_fact_reuse(self):
        db = DatabaseInstance.from_triples([("R", 0, 1), ("R", 1, 0)])
        assert has_path_with_trace(db, "RRRR", start=0)

    def test_consistent_only(self):
        # 0 -R-> 1 -R-> 0 -R-> 2 would need both R(0,1) and R(0,2).
        db = DatabaseInstance.from_triples(
            [("R", 0, 1), ("R", 1, 0), ("R", 0, 2), ("S", 2, 3)]
        )
        assert has_path_with_trace(db, "RRRS", start=0)
        assert not has_path_with_trace(db, "RRRS", start=0, consistent_only=True)

    def test_empty_trace(self):
        assert find_path_with_trace(self.db, "", start=0) == ()
        assert not has_path_with_trace(self.db, "", start=0, end=1)


class TestRootedCertainty:
    def test_simple_chain(self):
        db = DatabaseInstance.from_triples([("R", 0, 1), ("R", 1, 2)])
        assert rooted_certainty(db, "RR", 0)
        assert not rooted_certainty(db, "RRR", 0)

    def test_conflicting_block(self):
        db = DatabaseInstance.from_triples([("R", 0, 1), ("R", 0, 2), ("R", 1, 3)])
        # The repair choosing R(0,2) has no RR-path from 0.
        assert not rooted_certainty(db, "RR", 0)

    def test_agrees_with_repair_enumeration(self, rng):
        """Lemma 12 semantics: rooted certainty == all repairs satisfy q[c]."""
        for trial in range(60):
            db = random_instance(rng, 4, rng.randint(2, 9), ("R", "S"), 0.5)
            word = rng.choice(["R", "RR", "RS", "RSR", "RRS", "RRR"])
            constant = rng.choice(sorted(db.adom()))
            expected = all(
                rooted_path_query_satisfied(word, constant, repair)
                for repair in iter_repairs(db)
            )
            assert rooted_certainty(db, word, constant) == expected


class TestTerminal:
    def test_example7(self):
        """Example 7: c is terminal for RSRT in db."""
        db = example7_instance()
        assert is_terminal(db, "c", "RSRT")

    def test_not_terminal(self):
        db = DatabaseInstance.from_triples([("R", 0, 1), ("S", 1, 2)])
        assert not is_terminal(db, 0, "RS")

    def test_empty_word_never_terminal(self):
        db = DatabaseInstance.from_triples([("R", 0, 1)])
        assert not is_terminal(db, 0, "")

    def test_lemma17_equivalence(self, rng):
        """Lemma 17: c terminal for q iff db is a no-instance of q[c]."""
        for trial in range(40):
            db = random_instance(rng, 4, rng.randint(2, 8), ("R", "S"), 0.5)
            word = rng.choice(["RS", "RR", "RSR"])
            constant = rng.choice(sorted(db.adom()))
            no_instance = not all(
                rooted_path_query_satisfied(word, constant, repair)
                for repair in iter_repairs(db)
            )
            assert is_terminal(db, constant, word) == no_instance
