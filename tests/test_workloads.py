"""Tests for the workload generators and query catalog."""

import random

from repro.classification.classifier import classify
from repro.db.evaluation import path_query_satisfied
from repro.workloads.generators import (
    chain_instance,
    planted_instance,
    random_instance,
    random_word,
)
from repro.workloads.queries import (
    PAPER_QUERY_CLASSES,
    conp_family,
    fo_family,
    nl_family,
    paper_queries,
    ptime_family,
)
from repro.classification.classifier import ComplexityClass


class TestRandomInstance:
    def test_deterministic(self):
        a = random_instance(random.Random(1), 4, 10, ("R", "X"), 0.4)
        b = random_instance(random.Random(1), 4, 10, ("R", "X"), 0.4)
        assert a == b

    def test_size_and_alphabet(self, rng):
        db = random_instance(rng, 5, 12, ("R",), 0.3)
        assert len(db) <= 12
        assert db.relation_names() <= {"R"}

    def test_zero_conflict_rate_consistent(self, rng):
        for _ in range(10):
            db = random_instance(rng, 6, 8, ("R", "S"), 0.0)
            assert db.is_consistent()

    def test_block_size_cap(self, rng):
        db = random_instance(rng, 3, 20, ("R",), 0.9, max_block_size=2)
        assert all(len(b) <= 2 for b in db.blocks())


class TestPlantedInstance:
    def test_plant_satisfies_query(self, rng):
        for _ in range(10):
            db = planted_instance(rng, "RRX", 6, n_paths=1, n_noise_facts=0)
            assert path_query_satisfied("RRX", db)

    def test_noise_adds_facts(self, rng):
        quiet = planted_instance(rng, "RRX", 6, n_paths=1, n_noise_facts=0)
        noisy = planted_instance(rng, "RRX", 6, n_paths=1, n_noise_facts=10)
        assert len(noisy) >= len(quiet)


class TestChainInstance:
    def test_consistent_chain(self):
        db = chain_instance("RRX", repetitions=3)
        assert db.is_consistent()
        assert len(db) == 9
        assert path_query_satisfied("RRX", db)

    def test_conflicts(self):
        db = chain_instance("RRX", repetitions=3, conflict_every=3)
        assert not db.is_consistent()
        assert len(db.conflicting_blocks()) == 3


class TestQueryCatalog:
    def test_catalog_classes_match_classifier(self):
        for text, expected in PAPER_QUERY_CLASSES.items():
            assert classify(text).complexity is expected

    def test_paper_queries_order_stable(self):
        assert [str(w) for w in paper_queries()] == list(PAPER_QUERY_CLASSES)

    def test_families_have_declared_classes(self):
        for n in (2, 3, 4):
            assert classify(fo_family(n)).complexity is ComplexityClass.FO
            assert classify(nl_family(n)).complexity is ComplexityClass.NL_COMPLETE
            assert (
                classify(ptime_family(n)).complexity
                is ComplexityClass.PTIME_COMPLETE
            )
            assert (
                classify(conp_family(n)).complexity
                is ComplexityClass.CONP_COMPLETE
            )

    def test_random_word(self, rng):
        w = random_word(rng, 6, "RS")
        assert len(w) == 6
        assert w.alphabet() <= {"R", "S"}
