"""Tests for the Datalog substrate: syntax, stratification, engine."""

import pytest

from repro.datalog.engine import evaluate_program
from repro.datalog.stratify import is_linear, stratify
from repro.datalog.syntax import Literal, Program, Rule, var

X, Y, Z = var("X"), var("Y"), var("Z")


def reachability_program():
    return Program(
        [
            Rule(Literal("reach", (X, Y)), (Literal("edge", (X, Y)),)),
            Rule(
                Literal("reach", (X, Z)),
                (Literal("reach", (X, Y)), Literal("edge", (Y, Z))),
            ),
        ]
    )


class TestSyntax:
    def test_literal_substitution(self):
        lit = Literal("p", (X, "c"))
        assert lit.substitute({X: "a"}) == Literal("p", ("a", "c"))

    def test_negated_head_rejected(self):
        with pytest.raises(ValueError):
            Rule(Literal("p", (X,), negated=True), (Literal("q", (X,)),))

    def test_unsafe_rule_rejected(self):
        with pytest.raises(ValueError):
            Program([Rule(Literal("p", (X, Y)), (Literal("q", (X,)),))])

    def test_unsafe_negation_rejected(self):
        with pytest.raises(ValueError):
            Program(
                [Rule(Literal("p", (X,)), (Literal("q", (Y,), negated=True),))]
            )

    def test_edb_idb_split(self):
        program = reachability_program()
        assert program.idb_predicates() == frozenset({"reach"})
        assert program.edb_predicates() == frozenset({"edge"})

    def test_str_rendering(self):
        rule = Rule(Literal("p", (X,)), (Literal("q", (X,)),))
        assert str(rule) == "p(X) :- q(X)."


class TestStratification:
    def test_positive_program_single_stratum(self):
        strata = stratify(reachability_program())
        assert ["reach"] == sorted(p for s in strata for p in s)

    def test_negation_pushes_up(self):
        program = Program(
            [
                Rule(Literal("a", (X,)), (Literal("e", (X, Y)),)),
                Rule(
                    Literal("b", (X,)),
                    (Literal("e", (X, Y)), Literal("a", (X,), negated=True)),
                ),
            ]
        )
        strata = stratify(program)
        level = {p: i for i, s in enumerate(strata) for p in s}
        assert level["a"] < level["b"]

    def test_unstratifiable_rejected(self):
        program = Program(
            [
                Rule(
                    Literal("p", (X,)),
                    (Literal("e", (X,)), Literal("q", (X,), negated=True)),
                ),
                Rule(
                    Literal("q", (X,)),
                    (Literal("e", (X,)), Literal("p", (X,), negated=True)),
                ),
            ]
        )
        with pytest.raises(ValueError):
            stratify(program)

    def test_linearity(self):
        assert is_linear(reachability_program())
        nonlinear = Program(
            [
                Rule(Literal("t", (X, Y)), (Literal("e", (X, Y)),)),
                Rule(
                    Literal("t", (X, Z)),
                    (Literal("t", (X, Y)), Literal("t", (Y, Z))),
                ),
            ]
        )
        assert not is_linear(nonlinear)


class TestEngine:
    def test_transitive_closure(self):
        edb = {"edge": [(1, 2), (2, 3), (3, 4)]}
        result = evaluate_program(reachability_program(), edb)
        assert (1, 4) in result["reach"]
        assert (4, 1) not in result["reach"]
        assert len(result["reach"]) == 6

    def test_cyclic_graph_terminates(self):
        edb = {"edge": [(1, 2), (2, 1)]}
        result = evaluate_program(reachability_program(), edb)
        assert (1, 1) in result["reach"]

    def test_negation(self):
        program = Program(
            [
                Rule(Literal("node", (X,)), (Literal("edge", (X, Y)),)),
                Rule(Literal("node", (Y,)), (Literal("edge", (X, Y)),)),
                Rule(Literal("haskey", (X,)), (Literal("edge", (X, Y)),)),
                Rule(
                    Literal("sink", (X,)),
                    (Literal("node", (X,)), Literal("haskey", (X,), negated=True)),
                ),
            ]
        )
        result = evaluate_program(program, {"edge": [(1, 2), (2, 3)]})
        assert result["sink"] == {(3,)}

    def test_neq_builtin(self):
        program = Program(
            [
                Rule(
                    Literal("distinct", (X, Y)),
                    (
                        Literal("edge", (X, Y)),
                        Literal("neq", (X, Y)),
                    ),
                )
            ]
        )
        result = evaluate_program(program, {"edge": [(1, 1), (1, 2)]})
        assert result["distinct"] == {(1, 2)}

    def test_constants_in_rules(self):
        program = Program(
            [
                Rule(
                    Literal("from_one", (Y,)),
                    (Literal("edge", (1, Y)),),
                )
            ]
        )
        result = evaluate_program(program, {"edge": [(1, 2), (2, 3)]})
        assert result["from_one"] == {(2,)}

    def test_facts_as_rules(self):
        program = Program(
            [
                Rule(Literal("p", ("a",)), ()),
                Rule(Literal("q", (X,)), (Literal("p", (X,)),)),
            ]
        )
        result = evaluate_program(program, {})
        assert result["q"] == {("a",)}
