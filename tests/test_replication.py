"""The replicated journal tier, unit to end-to-end.

Covers the kv backends and the kv journal store, the replication
semantics of :class:`~repro.serving.replication.ReplicatedJournalStore`
(lag, shipping, most-caught-up promotion, guard refusal, degraded
reads), the hypothesis properties the ISSUE pins (replica tailing is
idempotent under redelivered ops; a tailed replica's replay is
byte-identical to the primary's), and the acceptance run: kill the
primary store mid-traffic with injected journal faults on both
transports -- a replica is promoted, every durable resident answers
correctly against the independent oracle, zero committed writes are
lost, and a server restarted on the promoted store restores placements.
"""

import asyncio
import pickle
import sqlite3
import time

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.db.delta import Delta
from repro.db.facts import Fact
from repro.db.instance import DatabaseInstance
from repro.scenarios.oracle import check_read_outcomes
from repro.serving import (
    AsyncCertaintyServer,
    DeadlineExceeded,
    FailoverGuard,
    FileKV,
    JournalUnavailable,
    KVJournalStore,
    MemoryJournalStore,
    MemoryKV,
    ReplicatedJournalStore,
    RestartPolicy,
    ServerOverloaded,
    ShardUnavailable,
    SqliteJournalStore,
    make_journal_store,
)

TRANSPORTS = ["thread", "process"]


def _db(*triples):
    return DatabaseInstance.from_triples(list(triples))


def _delta(inserts=(), removes=()):
    return Delta(
        removes=tuple(Fact(*t) for t in removes),
        inserts=tuple(Fact(*t) for t in inserts),
    )


# ---------------------------------------------------------------------------
# Instrumented follower stores for white-box replication tests.
# ---------------------------------------------------------------------------


class _LossyFollower(MemoryJournalStore):
    """Silently drops stamped ops above a ceiling -- a replica that
    stopped applying mid-stream (shipping still advances its cursor)."""

    def __init__(self, ceiling):
        super().__init__()
        self.ceiling = ceiling

    def register(self, shard_id, name, db, seq=0):
        if seq and seq > self.ceiling:
            return
        super().register(shard_id, name, db, seq)

    def delta(self, shard_id, name, delta, seq=0):
        if seq and seq > self.ceiling:
            return
        super().delta(shard_id, name, delta, seq)

    def seal(self, shard_id, seq):
        if seq > self.ceiling:
            return
        super().seal(shard_id, seq)


class _ExplodingFollower(MemoryJournalStore):
    """Raises on every write once ``broken`` is set -- a dead replica."""

    def __init__(self):
        super().__init__()
        self.broken = False

    def register(self, *args, **kwargs):
        if self.broken:
            raise RuntimeError("replica down")
        super().register(*args, **kwargs)

    def delta(self, *args, **kwargs):
        if self.broken:
            raise RuntimeError("replica down")
        super().delta(*args, **kwargs)


class _FlakyReadPrimary(MemoryJournalStore):
    """Raises on reads once ``read_broken`` is set; writes still work."""

    def __init__(self):
        super().__init__()
        self.read_broken = False

    def get(self, shard_id, name):
        if self.read_broken:
            raise RuntimeError("primary read path down")
        return super().get(shard_id, name)


# ---------------------------------------------------------------------------
# KV backends and the kv journal store.
# ---------------------------------------------------------------------------


class TestKVBackends:
    @pytest.fixture(params=["memory", "file"])
    def kv(self, request, tmp_path):
        if request.param == "memory":
            return MemoryKV()
        return FileKV(tmp_path / "kv")

    def test_get_set_append_keys_delete(self, kv):
        assert kv.get("a") is None
        kv.set("a", b"one")
        assert kv.get("a") == b"one"
        kv.append("a", b"+two")
        assert kv.get("a") == b"one+two"
        kv.append("b", b"fresh")  # append creates
        assert kv.get("b") == b"fresh"
        assert kv.keys() == ["a", "b"]
        kv.set("a", b"replaced")  # set overwrites, not appends
        assert kv.get("a") == b"replaced"
        kv.delete("a")
        kv.delete("a")  # idempotent
        assert kv.get("a") is None
        assert kv.keys() == ["b"]

    def test_file_kv_persists_across_instances(self, tmp_path):
        first = FileKV(tmp_path / "kv")
        first.set("shard-0.log", b"payload")
        second = FileKV(tmp_path / "kv")
        assert second.get("shard-0.log") == b"payload"
        assert second.keys() == ["shard-0.log"]


class TestKVJournalStoreDurability:
    def test_shared_backend_replays(self):
        kv = MemoryKV()
        store = KVJournalStore(kv)
        store.register(0, "a", _db(("R", 0, 1)), seq=1)
        store.delta(0, "a", _delta(inserts=[("X", 1, 2)]), seq=2)
        store.register(1, "b", _db(("S", 0, 1)), seq=1)
        expected = store.get(0, "a")
        reopened = KVJournalStore(kv)
        assert reopened.get(0, "a") == expected
        assert reopened.get(1, "b") == _db(("S", 0, 1))
        assert reopened.last_seq(0) == 2
        assert reopened.placements() == {"a": 0, "b": 1}
        # Redelivery protection survives the replay too.
        reopened.delta(0, "a", _delta(removes=[("X", 1, 2)]), seq=2)
        assert reopened.get(0, "a") == expected

    def test_file_backed_reopen(self, tmp_path):
        store = KVJournalStore(FileKV(tmp_path / "kv"))
        store.register(0, "toy", _db(("R", 0, 1)), seq=1)
        store.delta(0, "toy", _delta(inserts=[("X", 1, 2)]), seq=2)
        store.close()
        reopened = KVJournalStore(FileKV(tmp_path / "kv"))
        assert reopened.get(0, "toy") == _db(("R", 0, 1), ("X", 1, 2))
        assert reopened.last_seq(0) == 2

    def test_compaction_bounds_the_log(self, tmp_path):
        store = KVJournalStore(FileKV(tmp_path / "kv"), compact_every=4)
        store.register(0, "toy", _db(("R", 0, 1)), seq=1)
        for i in range(10):
            store.delta(
                0, "toy", _delta(inserts=[("X", i, i + 1)]), seq=2 + i
            )
        health = store.health()
        assert health["compactions"] == 2  # after deltas 4 and 8
        assert health["log_rows"] < 4 + 1
        expected = store.get(0, "toy")
        reopened = KVJournalStore(FileKV(tmp_path / "kv"))
        assert reopened.get(0, "toy") == expected
        assert reopened.last_seq(0) == 11

    def test_torn_tail_truncated_on_replay(self):
        kv = MemoryKV()
        store = KVJournalStore(kv)
        store.register(0, "toy", _db(("R", 0, 1)), seq=1)
        store.tear(0)  # crash mid-append: checksum-failing tail record
        reopened = KVJournalStore(kv)
        assert reopened.health()["truncated_ops"] == 1
        assert reopened.get(0, "toy") == _db(("R", 0, 1))
        assert reopened.last_seq(0) == 1
        # The truncated log was rewritten: a second replay is clean.
        third = KVJournalStore(kv)
        assert third.health()["truncated_ops"] == 0
        assert third.last_seq(0) == 1

    def test_byte_level_truncation(self, tmp_path):
        kv = FileKV(tmp_path / "kv")
        store = KVJournalStore(kv)
        for i in range(4):
            store.register(
                0, "res-{}".format(i), _db(("R", i, i + 1)), seq=i + 1
            )
        store.close()
        log = (tmp_path / "kv" / "shard-0.log").read_bytes()
        (tmp_path / "kv" / "shard-0.log").write_bytes(log[:-3])
        reopened = KVJournalStore(FileKV(tmp_path / "kv"))
        assert reopened.health()["truncated_ops"] == 1
        assert sorted(reopened.residents(0)) == ["res-0", "res-1", "res-2"]
        assert reopened.last_seq(0) == 3

    def test_compact_every_validated(self):
        with pytest.raises(ValueError):
            KVJournalStore(MemoryKV(), compact_every=0)


# ---------------------------------------------------------------------------
# Replication semantics.
# ---------------------------------------------------------------------------


class TestReplicationSemantics:
    def test_lag_and_flush(self):
        store = ReplicatedJournalStore(
            MemoryJournalStore(),
            (MemoryJournalStore(), MemoryJournalStore()),
            ship_every=100,  # nothing ships on its own
        )
        store.register(0, "toy", _db(("R", 0, 1)), seq=1)
        store.delta(0, "toy", _delta(inserts=[("X", 1, 2)]), seq=2)
        lags = [r["lag"] for r in store.health()["replication"]["replicas"]]
        assert lags == [2, 2]
        store.flush()
        lags = [r["lag"] for r in store.health()["replication"]["replicas"]]
        assert lags == [0, 0]
        for follower in store.followers:
            assert follower.get(0, "toy") == store.get(0, "toy")
            assert follower.last_seq(0) == 2

    def test_ship_every_ships_automatically(self):
        store = ReplicatedJournalStore(
            MemoryJournalStore(), (MemoryJournalStore(),), ship_every=3
        )
        store.register(0, "toy", _db(("R", 0, 1)), seq=1)
        store.delta(0, "toy", _delta(inserts=[("X", 1, 2)]), seq=2)
        assert store.followers[0].last_seq(0) == 0  # 2 ops: not yet
        store.delta(0, "toy", _delta(inserts=[("X", 2, 3)]), seq=3)
        assert store.followers[0].last_seq(0) == 3  # 3rd op shipped

    def test_bootstrap_syncs_a_lagging_follower(self, tmp_path):
        # The primary has history before the replica set is formed: the
        # bootstrap snapshot-ships it and seals to the high-water.
        primary = SqliteJournalStore(tmp_path / "p.db")
        primary.register(0, "a", _db(("R", 0, 1)), seq=1)
        primary.delta(0, "a", _delta(inserts=[("X", 1, 2)]), seq=2)
        primary.register(1, "b", _db(("S", 0, 1)), seq=1)
        follower = MemoryJournalStore()
        store = ReplicatedJournalStore(primary, (follower,))
        assert follower.get(0, "a") == primary.get(0, "a")
        assert follower.get(1, "b") == primary.get(1, "b")
        assert follower.last_seq(0) == 2  # sealed, not replayed op by op
        assert follower.last_seq(1) == 1
        lags = [r["lag"] for r in store.health()["replication"]["replicas"]]
        assert lags == [0]
        store.close()
        primary.close()

    def test_failover_retries_the_failed_write(self):
        store = ReplicatedJournalStore(
            MemoryJournalStore(), (MemoryJournalStore(),)
        )
        store.register(0, "toy", _db(("R", 0, 1)), seq=1)
        store.arm("write_error:times=1")
        # The caller never sees the injected failure.
        store.delta(0, "toy", _delta(inserts=[("X", 1, 2)]), seq=2)
        rep = store.health()["replication"]
        assert rep["failovers"] == 1
        assert rep["replicas"] == []  # the only follower was promoted
        assert store.get(0, "toy") == _db(("R", 0, 1), ("X", 1, 2))
        assert store.last_seq(0) == 2  # zero committed writes lost

    def test_promotes_the_most_caught_up_follower(self):
        lossy = _LossyFollower(ceiling=2)
        fresh = MemoryJournalStore()
        store = ReplicatedJournalStore(
            MemoryJournalStore(), (lossy, fresh), ship_every=1
        )
        store.register(0, "toy", _db(("R", 0, 1)), seq=1)
        for i in range(3):
            store.delta(
                0, "toy", _delta(inserts=[("X", i, i + 1)]), seq=2 + i
            )
        lags = [r["lag"] for r in store.health()["replication"]["replicas"]]
        assert lags == [2, 0]  # lossy stopped applying at seq 2
        store.arm("write_error:times=1")
        store.delta(0, "toy", _delta(inserts=[("Y", 0, 1)]), seq=5)
        assert store.primary is fresh  # not the lossy one
        assert store.last_seq(0) == 5
        assert len(store.get(0, "toy").facts) == 5

    def test_dead_follower_is_dropped_not_fatal(self):
        bad = _ExplodingFollower()
        good = MemoryJournalStore()
        store = ReplicatedJournalStore(
            MemoryJournalStore(), (bad, good), ship_every=1
        )
        store.register(0, "toy", _db(("R", 0, 1)), seq=1)
        bad.broken = True
        store.delta(0, "toy", _delta(inserts=[("X", 1, 2)]), seq=2)
        rep = store.health()["replication"]
        assert rep["followers_lost"] == 1
        assert len(rep["replicas"]) == 1
        assert good.last_seq(0) == 2

    def test_guard_refusal_surfaces_unavailable(self):
        store = ReplicatedJournalStore(
            MemoryJournalStore(),
            (MemoryJournalStore(),),
            guard=FailoverGuard(RestartPolicy(max_restarts=0)),
        )
        store.arm("write_error:times=1")
        with pytest.raises(JournalUnavailable):
            store.register(0, "toy", _db(("R", 0, 1)), seq=1)

    def test_exhausted_replica_set_surfaces_unavailable(self):
        store = ReplicatedJournalStore(
            MemoryJournalStore(), (MemoryJournalStore(),)
        )
        store.arm("write_error:times=2")
        store.register(0, "a", _db(("R", 0, 1)), seq=1)  # promotes the one
        with pytest.raises(JournalUnavailable):
            store.register(0, "b", _db(("S", 0, 1)), seq=2)

    def test_torn_write_tears_the_primary_log_for_real(self, tmp_path):
        path = tmp_path / "primary.db"
        store = ReplicatedJournalStore("sqlite:{}".format(path), ("memory",))
        db = _db(("R", 0, 1))
        store.register(0, "toy", db, seq=1)
        store.arm("torn_write:times=1")
        store.delta(0, "toy", _delta(inserts=[("X", 1, 2)]), seq=2)
        assert store.health()["replication"]["failovers"] == 1
        assert store.get(0, "toy") == _db(("R", 0, 1), ("X", 1, 2))
        store.close()
        # Reopening the torn primary exercises torn-tail recovery.
        reopened = SqliteJournalStore(path)
        assert reopened.health()["truncated_ops"] == 1
        assert reopened.get(0, "toy") == db
        reopened.close()

    def test_stall_delays_without_promoting(self):
        store = ReplicatedJournalStore(
            MemoryJournalStore(), (MemoryJournalStore(),)
        )
        store.arm("stall:seconds=0.05,times=1")
        start = time.monotonic()
        store.register(0, "toy", _db(("R", 0, 1)), seq=1)
        assert time.monotonic() - start >= 0.04
        assert store.health()["replication"]["failovers"] == 0

    def test_unknown_resident_delta_does_not_burn_a_replica(self):
        store = ReplicatedJournalStore(
            MemoryJournalStore(), (MemoryJournalStore(),)
        )
        with pytest.raises(KeyError):
            store.delta(0, "ghost", _delta(inserts=[("R", 0, 1)]), seq=1)
        assert store.health()["replication"]["failovers"] == 0
        assert len(store.followers) == 1

    def test_degraded_read_falls_back_to_freshest_replica(self):
        primary = _FlakyReadPrimary()
        lossy = _LossyFollower(ceiling=1)
        fresh = MemoryJournalStore()
        store = ReplicatedJournalStore(primary, (lossy, fresh), ship_every=1)
        store.register(0, "toy", _db(("R", 0, 1)), seq=1)
        store.delta(0, "toy", _delta(inserts=[("X", 1, 2)]), seq=2)
        primary.read_broken = True
        # read_snapshot answers from the freshest caught-up replica
        # (fresh, at seq 2 -- not lossy, stuck at seq 1) and never
        # promotes.
        assert store.read_snapshot(0, "toy") == _db(("R", 0, 1), ("X", 1, 2))
        assert store.health()["replication"]["failovers"] == 0
        assert store.primary is primary

    def test_plain_read_on_dead_primary_fails_over(self):
        primary = _FlakyReadPrimary()
        fresh = MemoryJournalStore()
        store = ReplicatedJournalStore(primary, (fresh,), ship_every=1)
        store.register(0, "toy", _db(("R", 0, 1)), seq=1)
        primary.read_broken = True
        assert store.get(0, "toy") == _db(("R", 0, 1))
        assert store.primary is fresh
        assert store.health()["replication"]["failovers"] == 1

    def test_close_closes_string_built_substores(self, tmp_path):
        store = make_journal_store(
            "replicated:sqlite:{};sqlite:{}".format(
                tmp_path / "p.db", tmp_path / "f.db"
            )
        )
        store.register(0, "toy", _db(("R", 0, 1)), seq=1)
        follower = store.followers[0]
        store.close()
        with pytest.raises(sqlite3.ProgrammingError):
            store.primary.health()
        with pytest.raises(sqlite3.ProgrammingError):
            follower.health()

    def test_injected_instances_stay_open(self):
        primary = MemoryJournalStore()
        follower = MemoryJournalStore()
        store = ReplicatedJournalStore(primary, (follower,), ship_every=100)
        store.register(0, "toy", _db(("R", 0, 1)), seq=1)
        store.close()  # flushes the op log, closes nothing it doesn't own
        assert follower.get(0, "toy") == _db(("R", 0, 1))
        primary.register(0, "more", _db(("S", 0, 1)), seq=2)  # still usable

    def test_validation(self):
        with pytest.raises(ValueError):
            ReplicatedJournalStore(MemoryJournalStore(), ())
        with pytest.raises(ValueError):
            ReplicatedJournalStore(
                MemoryJournalStore(), (MemoryJournalStore(),), ship_every=0
            )

    def test_server_rejects_journal_faults_without_replication(self):
        with pytest.raises(ValueError):
            AsyncCertaintyServer(
                journal_store="memory", journal_faults="write_error:times=1"
            )
        with pytest.raises(ValueError):
            AsyncCertaintyServer(journal_faults="write_error:times=1")


# ---------------------------------------------------------------------------
# Hypothesis properties: idempotent tailing, byte-identical replay.
# ---------------------------------------------------------------------------

ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["a", "b", "c"]),       # resident name
        st.sampled_from(["register", "delta"]),  # op kind
        st.integers(min_value=0, max_value=9),   # fact payload
        st.booleans(),                           # redeliver this op?
    ),
    min_size=1,
    max_size=30,
)


def _state_bytes(store, shards=(0,)):
    """A canonical byte serialization of a store's folded state."""
    return pickle.dumps(
        [
            (
                shard_id,
                sorted(
                    (name, sorted(db.facts))
                    for name, db in store.residents(shard_id).items()
                ),
                store.last_seq(shard_id),
            )
            for shard_id in shards
        ],
        protocol=pickle.HIGHEST_PROTOCOL,
    )


class TestReplicationProperties:
    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(ops_strategy, st.integers(min_value=1, max_value=5))
    def test_tailing_is_idempotent_and_byte_identical(self, ops, ship_every):
        store = ReplicatedJournalStore(
            MemoryJournalStore(),
            (MemoryJournalStore(), MemoryJournalStore()),
            ship_every=ship_every,
        )
        seq = 0
        registered = set()
        for name, kind, payload, redeliver in ops:
            seq += 1
            if kind == "register" or name not in registered:
                store.register(
                    0, name, _db(("R", payload, payload + 1)), seq=seq
                )
                registered.add(name)
                if redeliver:  # an at-least-once transport retries
                    store.register(
                        0, name, _db(("R", 99, 99)), seq=seq
                    )
            else:
                delta = _delta(inserts=[("X", payload, seq)])
                store.delta(0, name, delta, seq=seq)
                if redeliver:
                    store.delta(0, name, delta, seq=seq)
        store.flush()
        primary_state = _state_bytes(store.primary)
        for follower in store.followers:
            # The tailed replica's replay is byte-identical to the
            # primary's, redeliveries and all.
            assert _state_bytes(follower) == primary_state
        assert store.last_seq(0) == seq

    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(ops_strategy)
    def test_kv_replay_matches_live_state(self, ops):
        kv = MemoryKV()
        store = KVJournalStore(kv, compact_every=5)
        seq = 0
        registered = set()
        for name, kind, payload, _redeliver in ops:
            seq += 1
            if kind == "register" or name not in registered:
                store.register(
                    0, name, _db(("R", payload, payload + 1)), seq=seq
                )
                registered.add(name)
            else:
                store.delta(
                    0, name, _delta(inserts=[("X", payload, seq)]), seq=seq
                )
        replayed = KVJournalStore(kv)
        assert _state_bytes(replayed) == _state_bytes(store)


# ---------------------------------------------------------------------------
# End to end: mid-traffic primary failover on both transports.
# ---------------------------------------------------------------------------


class TestEndToEndFailover:
    """The acceptance run: injected journal faults kill the primary
    store mid-traffic; a replica is promoted, every durable resident
    still answers correctly (oracle cross-check), zero committed writes
    are lost, and a server restarted on the promoted store restores the
    placements."""

    DELTAS = [
        Delta.removing(("X", 2, 3)),
        Delta.inserting(("X", 3, 4)),
        Delta.inserting(("R", 2, 3)),
        Delta.removing(("R", 0, 1)),
        Delta.inserting(("X", 2, 3)),
    ]

    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_mid_traffic_failover(self, transport, tmp_path):
        primary_path = tmp_path / "primary.db"
        follower_path = tmp_path / "follower.db"
        journal_spec = "replicated:sqlite:{};sqlite:{},memory".format(
            primary_path, follower_path
        )
        base = _db(("R", 0, 1), ("R", 1, 2), ("X", 2, 3))

        async def scenario():
            async with AsyncCertaintyServer(
                num_shards=2,
                transport=transport,
                journal_store=journal_spec,
                journal_faults="write_error:every=4,times=1;seed=3",
                restart_policy=RestartPolicy(backoff_base=0.0),
            ) as server:
                await server.register("toy", base)
                await server.register("aux", _db(("S", 0, 1)))
                # Writes, in order: every one must commit exactly once
                # through the injected primary failure.
                for delta in self.DELTAS:
                    result = await server.solve_delta("toy", delta, "RRX")
                    assert result is not None
                reads = await asyncio.gather(
                    *(server.solve("toy", "RRX") for _ in range(8)),
                    return_exceptions=True,
                )
                final = await server.get_instance("toy")
                aux = await server.get_instance("aux")
                return reads, final, aux, server.stats()

        reads, final, aux, stats = asyncio.run(scenario())

        expected = base
        for delta in self.DELTAS:
            expected = delta.apply_to(expected).commit()
        assert final == expected  # zero lost, zero double-applied
        assert aux == _db(("S", 0, 1))

        # Oracle cross-check: every read matches the independent
        # reference answer on the committed instance, or is typed shed.
        check_read_outcomes(
            reads,
            expected,
            "RRX",
            allowed=(DeadlineExceeded, ServerOverloaded, ShardUnavailable),
        )

        # The failover actually happened, and it was the sqlite
        # follower (most caught-up, ties to lowest index) that was
        # promoted.
        replication = stats["journal"]["replication"]
        assert replication["failovers"] >= 1
        assert replication["primary"] == "sqlite"
        assert stats["journal_faults"]["armed"] is True
        assert stats["journal_faults"]["injected"].get("write_error", 0) >= 1

        # Restart on the promoted store: a fresh server opened on the
        # follower's path alone restores every placement and instance.
        async def reopen():
            async with AsyncCertaintyServer(
                num_shards=2,
                transport=transport,
                journal_store="sqlite:{}".format(follower_path),
            ) as server:
                return (
                    await server.get_instance("toy"),
                    await server.get_instance("aux"),
                    server.stats()["placement"],
                )

        toy_after, aux_after, placements = asyncio.run(reopen())
        assert toy_after == expected
        assert aux_after == _db(("S", 0, 1))
        assert sorted(placements) == ["aux", "toy"]

    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_armed_but_silent_plan_changes_nothing(self, transport):
        # A journal plan whose rules never fire must not perturb
        # results -- the overhead gate's correctness twin.
        async def scenario():
            async with AsyncCertaintyServer(
                num_shards=1,
                transport=transport,
                journal_store="replicated:memory;memory",
                journal_faults="write_error:batch=10000,times=1",
            ) as server:
                await server.register("toy", _db(("R", 0, 1), ("X", 1, 2)))
                result = await server.solve("toy", "RX")
                final = await server.get_instance("toy")
                return result.answer, final, server.stats()

        answer, final, stats = asyncio.run(scenario())
        assert answer is True
        assert final == _db(("R", 0, 1), ("X", 1, 2))
        assert stats["journal"]["replication"]["failovers"] == 0
        assert stats["journal_faults"]["injected"] == {}
