"""Tests for the classification-driven front end and cross-solver agreement."""

import pytest

from repro.db.instance import DatabaseInstance
from repro.db.repairs import count_repairs
from repro.queries.generalized import GeneralizedPathQuery
from repro.queries.path_query import PathQuery
from repro.solvers.brute_force import certain_answer_brute_force
from repro.solvers.certainty import certain_answer
from repro.workloads.generators import planted_instance, random_instance
from repro.workloads.paper_instances import figure2_instance, figure3_instance

from tests.conftest import PAPER_TABLE


class TestDispatch:
    def test_method_names(self):
        db = figure2_instance()
        for method, expected_tag in [
            ("fixpoint", "fixpoint"),
            ("nl", "nl"),
            ("sat", "sat"),
            ("brute_force", "brute_force"),
        ]:
            result = certain_answer(db, "RRX", method=method)
            assert result.method == expected_tag
            assert result.answer

    def test_auto_uses_matching_method(self):
        db = figure2_instance()
        assert certain_answer(db, "RRX").method == "nl"
        assert certain_answer(db, "RXRX").method == "fo"
        assert certain_answer(db, "RXRYRY").method == "fixpoint"
        conp = certain_answer(figure3_instance(), "ARRX")
        assert conp.method in ("sat", "fixpoint-prefilter")

    def test_conp_prefilter_short_circuits_no(self):
        result = certain_answer(figure3_instance(), "ARRX")
        assert not result.answer
        # The fixpoint prefilter cannot answer "no" here (it says yes
        # unsoundly), so the SAT solver must have run.
        assert result.method == "sat"

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            certain_answer(figure2_instance(), "RRX", method="quantum")

    def test_fo_method_requires_c1(self):
        with pytest.raises(ValueError):
            certain_answer(figure2_instance(), "RRX", method="fo")

    def test_accepts_path_query_and_word(self):
        db = figure2_instance()
        assert certain_answer(db, PathQuery("RRX")).answer
        assert certain_answer(db, "RRX").answer

    def test_generalized_routes(self):
        q = GeneralizedPathQuery("RR", {2: 3})
        db = DatabaseInstance.from_triples([("R", 0, 1), ("R", 1, 3)])
        result = certain_answer(db, q)
        assert result.method == "generalized"
        assert result.answer

    def test_complexity_recorded(self):
        result = certain_answer(figure2_instance(), "RRX")
        assert result.details["complexity"] == "NL-complete"


class TestCrossSolverAgreement:
    @pytest.mark.parametrize("query,_cls", PAPER_TABLE)
    def test_paper_queries_random_instances(self, query, _cls, rng):
        """The dispatched solver always matches brute force."""
        alphabet = sorted(set(query))
        for _ in range(25):
            db = random_instance(rng, 4, rng.randint(2, 10), alphabet, 0.5)
            if count_repairs(db) > 3000:
                continue
            expected = certain_answer_brute_force(db, query).answer
            assert certain_answer(db, query).answer == expected

    @pytest.mark.parametrize("query,_cls", PAPER_TABLE)
    def test_paper_queries_planted_instances(self, query, _cls, rng):
        for _ in range(15):
            db = planted_instance(
                rng, query, rng.randint(2, 6),
                n_paths=1, n_noise_facts=rng.randint(0, 8), conflict_rate=0.5,
            )
            if count_repairs(db) > 3000:
                continue
            expected = certain_answer_brute_force(db, query).answer
            assert certain_answer(db, query).answer == expected

    def test_consistent_instance_equals_satisfaction(self, rng):
        """On consistent instances, certainty = plain satisfaction."""
        from repro.db.evaluation import path_query_satisfied

        for _ in range(25):
            db = random_instance(rng, 4, rng.randint(2, 10), ("R", "X"), 0.0)
            assert db.is_consistent()
            for q in ("RRX", "RXRX"):
                assert certain_answer(db, q).answer == path_query_satisfied(q, db)

    def test_empty_instance_is_no(self):
        assert not certain_answer(DatabaseInstance.empty(), "R").answer
