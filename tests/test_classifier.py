"""Tests for the tetrachotomy classifier (Theorems 2, 3) and Section 8."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.classification.classifier import (
    Classification,
    ComplexityClass,
    classify,
    classify_generalized,
)
from repro.classification.generalized import (
    satisfies_d1,
    satisfies_d2,
    satisfies_d3,
)
from repro.queries.generalized import GeneralizedPathQuery
from repro.queries.path_query import PathQuery
from repro.words.word import Word

from tests.conftest import PAPER_TABLE

words = st.text(alphabet="RSX", max_size=8).map(Word)


class TestPaperTable:
    @pytest.mark.parametrize("query,expected", PAPER_TABLE)
    def test_paper_query_classes(self, query, expected):
        assert str(classify(query).complexity) == expected

    def test_accepts_path_query_objects(self):
        assert classify(PathQuery("RRX")).complexity is ComplexityClass.NL_COMPLETE

    def test_classification_carries_witnesses(self):
        result = classify("RXRYRY")
        assert result.c3 and not result.c2 and not result.c1
        assert result.c1_witness is not None
        assert result.c2_witness is not None
        assert result.c3_witness is None

    def test_str_rendering(self):
        text = str(classify("RRX"))
        assert "RRX" in text and "NL-complete" in text


class TestComplexityClassProperties:
    def test_tractability(self):
        assert ComplexityClass.FO.is_tractable
        assert ComplexityClass.NL_COMPLETE.is_tractable
        assert ComplexityClass.PTIME_COMPLETE.is_tractable
        assert not ComplexityClass.CONP_COMPLETE.is_tractable

    def test_first_order_flag(self):
        assert ComplexityClass.FO.is_first_order
        assert not ComplexityClass.NL_COMPLETE.is_first_order


class TestSelfJoinFreeAlwaysFO:
    """Theorem 1 corollary: self-join-free path queries are in FO."""

    @settings(max_examples=60, deadline=None)
    @given(st.permutations(list("RSXYZ")))
    def test_permutation_queries(self, symbols):
        assert classify(Word(symbols)).complexity is ComplexityClass.FO


class TestGeneralizedClassifier:
    def test_constant_free_falls_back(self):
        q = GeneralizedPathQuery("RRX")
        assert classify_generalized(q).complexity is ComplexityClass.NL_COMPLETE

    def test_rooted_query_is_fo(self):
        """Queries starting with a constant: char(q) = ε, trivially D1."""
        q = GeneralizedPathQuery("RRX", {0: "c"})
        assert classify_generalized(q).complexity is ComplexityClass.FO

    def test_self_join_free_char_is_fo(self):
        q = GeneralizedPathQuery("RSX", {3: "c"})
        assert classify_generalized(q).complexity is ComplexityClass.FO

    def test_terminal_constant_blocks_c1(self):
        """[[RR, c]]: with a constant, a prefix homomorphism into the
        rewound word cannot exist, so D1 fails; hom exists, so D2/D3 hold:
        NL-complete (cf. Theorem 5)."""
        q = GeneralizedPathQuery("RR", {2: "c"})
        assert not satisfies_d1(q)
        assert satisfies_d2(q)
        assert satisfies_d3(q)
        assert classify_generalized(q).complexity is ComplexityClass.NL_COMPLETE

    def test_conp_with_constant(self):
        """[[RXRYRY, c]]: the Example 3 q3 word with a pinned endpoint.

        D3 requires a *suffix* occurrence in the rewound word, which
        fails, so the query is coNP-complete (Theorem 5: no PTIME level
        with constants)."""
        q = GeneralizedPathQuery("RXRYRY", {6: "c"})
        assert not satisfies_d3(q)
        assert classify_generalized(q).complexity is ComplexityClass.CONP_COMPLETE

    @settings(max_examples=80, deadline=None)
    @given(words)
    def test_theorem5_trichotomy(self, word):
        """With a constant, the class is never PTIME-complete (Lemma 30)."""
        q = GeneralizedPathQuery(word, {len(word): "c"})
        result = classify_generalized(q)
        assert result.complexity is not ComplexityClass.PTIME_COMPLETE

    @settings(max_examples=80, deadline=None)
    @given(words)
    def test_d_implications(self, word):
        """D1 => D2 => D3, mirroring Proposition 1."""
        q = GeneralizedPathQuery(word, {len(word): "c"})
        if satisfies_d1(q):
            assert satisfies_d2(q)
        if satisfies_d2(q):
            assert satisfies_d3(q)

    def test_classify_generalized_on_path_rejects_nothing(self):
        # classify() on a constant-bearing query routes to the generalized
        # classifier automatically.
        q = GeneralizedPathQuery("RR", {2: "c"})
        assert classify(q).complexity is ComplexityClass.NL_COMPLETE
