"""Tests for the syntactic conditions C1, C2, C3 (Section 3)."""

from hypothesis import given, settings, strategies as st

from repro.classification.conditions import (
    satisfies_c1,
    satisfies_c2,
    satisfies_c3,
)
from repro.words.factors import is_factor, is_prefix, is_self_join_free
from repro.words.rewind import enumerate_language
from repro.words.word import Word

words = st.text(alphabet="RSX", max_size=8).map(Word)


class TestPaperExamples:
    def test_example3_q1(self):
        """RXRX rewinds only to words with RXRX as a prefix: C1."""
        assert satisfies_c1("RXRX")
        assert satisfies_c2("RXRX")
        assert satisfies_c3("RXRX")

    def test_example3_q2(self):
        """RXRY satisfies C3 and (vacuously) C2, violates C1."""
        assert not satisfies_c1("RXRY")
        assert satisfies_c2("RXRY")
        assert satisfies_c3("RXRY")

    def test_example3_q3(self):
        """RXRYRY satisfies C3 but violates C2 (v1=X, v2=Y, Rw=RY)."""
        assert not satisfies_c1("RXRYRY")
        assert not satisfies_c2("RXRYRY")
        assert satisfies_c3("RXRYRY")

    def test_example3_q4(self):
        """RXRXRYRY violates C3."""
        assert not satisfies_c3("RXRXRYRY")

    def test_intro_queries(self):
        assert satisfies_c1("RR")
        assert not satisfies_c1("RRX")
        assert satisfies_c2("RRX")
        assert not satisfies_c3("ARRX")

    def test_example2_style(self):
        # Self-join-free words vacuously satisfy everything.
        assert satisfies_c1("RSX")

    def test_shortest_lemma3_words(self):
        """RRSRS and RSRRR: the shortest C3-but-not-C2 words (Lemma 3)."""
        for q in ("RRSRS", "RSRRR"):
            assert satisfies_c3(q)
            assert not satisfies_c2(q)

    def test_empty_and_singleton(self):
        assert satisfies_c1("")
        assert satisfies_c1("R")
        assert satisfies_c1("RR")
        assert satisfies_c1("RRR")


class TestProposition1:
    @settings(max_examples=300, deadline=None)
    @given(words)
    def test_c1_implies_c2_implies_c3(self, q):
        if satisfies_c1(q):
            assert satisfies_c2(q)
        if satisfies_c2(q):
            assert satisfies_c3(q)


class TestLemma5Correspondence:
    """C1/C3 agree with prefix/factor closure of L↬(q) (bounded check)."""

    @settings(max_examples=120, deadline=None)
    @given(words)
    def test_c1_iff_prefix_closed(self, q):
        language = enumerate_language(q, len(q) + 4)
        assert satisfies_c1(q) == all(is_prefix(q, p) for p in language)

    @settings(max_examples=120, deadline=None)
    @given(words)
    def test_c3_iff_factor_closed(self, q):
        language = enumerate_language(q, len(q) + 4)
        assert satisfies_c3(q) == all(is_factor(q, p) for p in language)


class TestSelfJoinFree:
    @settings(max_examples=100, deadline=None)
    @given(words)
    def test_self_join_free_satisfies_all(self, q):
        if is_self_join_free(q):
            assert satisfies_c1(q)
            assert satisfies_c2(q)
            assert satisfies_c3(q)
