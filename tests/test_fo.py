"""Tests for the FO substrate and the Lemma 12/13 rewritings."""

import random

from repro.db.instance import DatabaseInstance
from repro.db.paths import rooted_certainty
from repro.db.repairs import iter_repairs
from repro.db.evaluation import path_query_satisfied, rooted_path_query_satisfied
from repro.fo.evaluate import evaluate, formula_depth, formula_size
from repro.fo.rewriting import c1_rewriting, rooted_rewriting
from repro.fo.syntax import (
    And,
    Exists,
    FALSE,
    Forall,
    Implies,
    Not,
    Or,
    RelationAtom,
    TRUE,
)
from repro.queries.atoms import Variable
from repro.workloads.generators import random_instance
from repro.workloads.paper_instances import intro_rr_fo_instance

import pytest

X = Variable("x")
Y = Variable("y")


class TestEvaluator:
    def setup_method(self):
        self.db = DatabaseInstance.from_triples([("R", 1, 2), ("R", 2, 3)])

    def test_atom(self):
        assert evaluate(RelationAtom("R", 1, 2), self.db)
        assert not evaluate(RelationAtom("R", 1, 3), self.db)

    def test_connectives(self):
        a = RelationAtom("R", 1, 2)
        b = RelationAtom("R", 1, 3)
        assert evaluate(And((a,)), self.db)
        assert not evaluate(And((a, b)), self.db)
        assert evaluate(Or((a, b)), self.db)
        assert evaluate(Not(b), self.db)
        assert evaluate(Implies(b, a), self.db)
        assert evaluate(TRUE, self.db)
        assert not evaluate(FALSE, self.db)

    def test_quantifiers(self):
        assert evaluate(Exists(X, RelationAtom("R", 1, X)), self.db)
        assert not evaluate(Forall(X, RelationAtom("R", 1, X)), self.db)
        formula = Forall(
            X,
            Implies(
                RelationAtom("R", 1, X),
                Exists(Y, RelationAtom("R", X, Y)),
            ),
        )
        assert evaluate(formula, self.db)

    def test_unbound_variable_raises(self):
        with pytest.raises(ValueError):
            evaluate(RelationAtom("R", X, 2), self.db)

    def test_operator_sugar(self):
        a = RelationAtom("R", 1, 2)
        b = RelationAtom("R", 2, 3)
        assert evaluate(a & b, self.db)
        assert evaluate(a | FALSE, self.db)
        assert evaluate(~FALSE, self.db)

    def test_metrics(self):
        formula = Exists(X, RelationAtom("R", 1, X))
        assert formula_size(formula) == 2
        assert formula_depth(formula) == 2


class TestRootedRewriting:
    def test_intro_formula_shape(self):
        """The intro's φ for q = RR is exactly the Lemma 12 nesting."""
        text = str(c1_rewriting("RR"))
        assert "∃" in text and "∀" in text and "→" in text

    def test_matches_semantic_recursion(self, rng):
        """Lemma 12: the formula agrees with rooted_certainty everywhere."""
        for _ in range(40):
            db = random_instance(rng, 4, rng.randint(2, 8), ("R", "S"), 0.5)
            word = rng.choice(["R", "RR", "RS", "RRS", "RSR"])
            formula = rooted_rewriting(word)
            root_var = Variable("x0")
            for constant in sorted(db.adom()):
                semantic = rooted_certainty(db, word, constant)
                syntactic = evaluate(formula, db, {root_var: constant})
                assert semantic == syntactic

    def test_lemma12_against_repairs(self, rng):
        """q[c] certainty equals all-repairs satisfaction, self-joins included."""
        for _ in range(40):
            db = random_instance(rng, 3, rng.randint(2, 7), ("R",), 0.6)
            word = rng.choice(["RR", "RRR"])
            for constant in sorted(db.adom()):
                expected = all(
                    rooted_path_query_satisfied(word, constant, repair)
                    for repair in iter_repairs(db)
                )
                assert rooted_certainty(db, word, constant) == expected


class TestC1Rewriting:
    def test_rejects_non_c1(self):
        with pytest.raises(ValueError):
            c1_rewriting("RRX")

    def test_check_false_builds_anyway(self):
        formula = c1_rewriting("RRX", check=False)
        assert formula_size(formula) > 0

    def test_intro_rr_instance(self):
        """Every repair of the intro instance has an R-path of length 2."""
        db = intro_rr_fo_instance()
        assert evaluate(c1_rewriting("RR"), db)
        for repair in iter_repairs(db):
            assert path_query_satisfied("RR", repair)

    def test_lemma13_against_brute_force(self, rng):
        from repro.solvers.brute_force import certain_answer_brute_force

        for _ in range(30):
            db = random_instance(rng, 4, rng.randint(2, 8), ("R", "X"), 0.5)
            q = rng.choice(["RR", "RXRX", "RX"])
            expected = certain_answer_brute_force(db, q).answer
            assert evaluate(c1_rewriting(q), db) == expected
