"""Tests for facts, blocks and database instances."""

import pytest

from repro.db.facts import Fact
from repro.db.instance import Block, DatabaseInstance


class TestFact:
    def test_key_equality(self):
        assert Fact("R", "a", "b").key_equal(Fact("R", "a", "c"))
        assert not Fact("R", "a", "b").key_equal(Fact("S", "a", "b"))
        assert not Fact("R", "a", "b").key_equal(Fact("R", "b", "b"))

    def test_block_id(self):
        assert Fact("R", 1, 2).block_id == ("R", 1)

    def test_ordering_mixed_types(self):
        facts = [Fact("R", ("v", 1), "x"), Fact("R", "a", "b"), Fact("A", 9, 9)]
        ordered = sorted(facts)
        assert ordered[0].relation == "A"

    def test_str(self):
        assert str(Fact("R", "a", "b")) == "R(a, b)"

    def test_empty_relation_rejected(self):
        with pytest.raises(ValueError):
            Fact("", 1, 2)


class TestBlock:
    def test_block_structure(self):
        block = Block(("R", "a"), [Fact("R", "a", 1), Fact("R", "a", 2)])
        assert len(block) == 2
        assert block.is_conflicting()
        assert block.relation == "R"
        assert block.key == "a"

    def test_empty_block_rejected(self):
        with pytest.raises(ValueError):
            Block(("R", "a"), [])

    def test_wrong_member_rejected(self):
        with pytest.raises(ValueError):
            Block(("R", "a"), [Fact("R", "b", 1)])


class TestDatabaseInstance:
    def test_from_triples(self):
        db = DatabaseInstance.from_triples([("R", 0, 1), ("R", 0, 2)])
        assert len(db) == 2
        assert Fact("R", 0, 1) in db

    def test_blocks(self):
        db = DatabaseInstance.from_triples(
            [("R", 0, 1), ("R", 0, 2), ("S", 0, 1), ("R", 1, 0)]
        )
        assert len(db.blocks()) == 3
        assert len(db.conflicting_blocks()) == 1
        assert db.block("R", 0) is not None
        assert db.block("R", 9) is None

    def test_adom(self):
        db = DatabaseInstance.from_triples([("R", 0, 1), ("X", 1, 5)])
        assert db.adom() == frozenset({0, 1, 5})

    def test_consistency(self):
        assert DatabaseInstance.from_triples([("R", 0, 1), ("R", 1, 2)]).is_consistent()
        assert not DatabaseInstance.from_triples(
            [("R", 0, 1), ("R", 0, 2)]
        ).is_consistent()

    def test_out_facts(self):
        db = DatabaseInstance.from_triples([("R", 0, 1), ("R", 0, 2), ("S", 0, 3)])
        assert {f.value for f in db.out_facts(0, "R")} == {1, 2}
        assert db.out_facts(5, "R") == ()

    def test_is_repair_of(self):
        db = DatabaseInstance.from_triples([("R", 0, 1), ("R", 0, 2), ("S", 3, 4)])
        repair = DatabaseInstance.from_triples([("R", 0, 1), ("S", 3, 4)])
        assert repair.is_repair_of(db)
        # Consistent but not maximal: misses the S block.
        partial = DatabaseInstance.from_triples([("R", 0, 1)])
        assert not partial.is_repair_of(db)
        # Not a subinstance.
        other = DatabaseInstance.from_triples([("R", 0, 9), ("S", 3, 4)])
        assert not other.is_repair_of(db)

    def test_set_operations(self):
        a = DatabaseInstance.from_triples([("R", 0, 1)])
        b = DatabaseInstance.from_triples([("S", 0, 1)])
        union = a.union(b)
        assert len(union) == 2
        assert a <= union
        assert union.without_facts([Fact("S", 0, 1)]) == a

    def test_canonical_iteration(self):
        db = DatabaseInstance.from_triples([("S", 0, 1), ("R", 0, 1)])
        assert [f.relation for f in db] == ["R", "S"]

    def test_equality_and_hash(self):
        a = DatabaseInstance.from_triples([("R", 0, 1)])
        b = DatabaseInstance.from_triples([("R", 0, 1)])
        assert a == b
        assert len({a, b}) == 1
