"""The scenario matrix: axes, oracle, determinism, and the smoke cells.

Four layers of guarantees:

* **generators** -- the coNP hardness gadget's provable ground truth and
  the firehose stream's no-no-op/liveness invariants, cross-checked by
  brute force;
* **oracle** -- the differential verifier flags a seeded wrong answer
  (if it cannot catch a planted bug, no cell is evidence of anything);
* **cells** -- the tier-1 smoke cells (``-m scenarios_smoke``) and a
  chaos-armed serving cell verify every answered request;
* **determinism** -- the same seed reproduces workloads bit-for-bit and
  the canonical report byte-for-byte, including a serving cell.

The full 20-cell matrix (every family x every mode, including
``serve-process``) runs in the slow lane.
"""

import json
import subprocess
import sys

import pytest

from repro.db.repairs import count_repairs
from repro.scenarios import (
    FAMILIES,
    MODES,
    SMOKE_CELLS,
    AnsweredRequest,
    Mismatch,
    build_workload,
    default_chaos_spec,
    default_matrix,
    parse_cells,
    reference_answer,
    render_report,
    run_cell,
    run_matrix,
    verify_answers,
)
from repro.solvers.brute_force import certain_answer_brute_force


class TestGenerators:
    def test_gadget_ground_truth_matches_brute_force(self):
        import random

        from repro.workloads.generators import hardness_gadget_instance

        for seed in range(3):
            rng = random.Random(seed)
            for branches, straight in [(1, 0), (1, 1), (2, 0), (3, 2)]:
                db = hardness_gadget_instance(rng, branches, straight)
                want = straight >= 1
                assert (
                    certain_answer_brute_force(db, "ARRX").answer is want
                ), (seed, branches, straight)
                assert reference_answer(db, "ARRX") is want

    def test_gadget_rejects_degenerate_queries(self):
        import random

        from repro.workloads.generators import hardness_gadget_instance

        rng = random.Random(0)
        with pytest.raises(ValueError):
            hardness_gadget_instance(rng, 2, 1, query="RX")  # too short
        with pytest.raises(ValueError):
            hardness_gadget_instance(rng, 2, 1, query="RRRX")  # head recurs
        with pytest.raises(ValueError):
            hardness_gadget_instance(rng, 2, 1, query="ARR")  # repeated tail
        with pytest.raises(ValueError):
            hardness_gadget_instance(rng, 2, 3)  # straight > branches

    def test_firehose_stream_edits_never_no_op(self):
        import random

        from repro.workloads.generators import firehose_stream, random_instance

        rng = random.Random(5)
        base = random_instance(rng, 5, 10, ("A", "R", "X"), 0.4)
        deltas = firehose_stream(rng, base, 12, max_edits=3)
        assert deltas
        live = set(base.facts)
        for delta in deltas:
            assert delta.removes or delta.inserts
            for fact in delta.removes:
                assert fact in live  # removes always hit a live fact
            for fact in delta.inserts:
                assert fact not in live  # inserts are always new
            live.difference_update(delta.removes)
            live.update(delta.inserts)

    def test_firehose_stream_is_seed_deterministic(self):
        import random

        from repro.workloads.generators import firehose_stream, random_instance

        def build():
            rng = random.Random(21)
            base = random_instance(rng, 4, 8, ("R", "X"), 0.5)
            return base, firehose_stream(rng, base, 6)

        base_a, stream_a = build()
        base_b, stream_b = build()
        assert base_a == base_b
        assert stream_a == stream_b  # Delta is a frozen value type


class TestOracle:
    def test_seeded_wrong_answer_is_flagged(self):
        """The self-test: plant a bug, the verifier must catch it."""
        workload = build_workload("paper", seed=0)
        name = workload.names[0]
        query = workload.queries[name][0]
        db = workload.instances[name]
        truth = reference_answer(db, query)
        good = AnsweredRequest(name, query, truth, "nl", db)
        bad = AnsweredRequest(name, query, not truth, "nl", db)
        assert verify_answers([good]) == []
        assert verify_answers([good, bad]) == [
            Mismatch(name=name, query=query, got=not truth, want=truth)
        ]

    def test_mismatch_survives_memoized_duplicates(self):
        """A read burst repeats (instance, query); the memo must not
        swallow a wrong answer among correct duplicates."""
        workload = build_workload("random", seed=3)
        name = workload.names[0]
        db = workload.instances[name]
        truth = reference_answer(db, "RRX")
        answered = [AnsweredRequest(name, "RRX", truth, "nl", db)] * 3
        answered.insert(2, AnsweredRequest(name, "RRX", not truth, "nl", db))
        mismatches = verify_answers(answered)
        assert len(mismatches) == 1
        assert mismatches[0].want is truth


class TestAxes:
    def test_matrix_is_at_least_four_by_four(self):
        assert len(FAMILIES) >= 4
        assert len(MODES) >= 4
        cells = default_matrix()
        assert len(cells) >= 16
        assert len(set(cells)) == len(cells)

    def test_workload_builders_are_seed_deterministic(self):
        for family in FAMILIES:
            assert build_workload(family, seed=9) == build_workload(
                family, seed=9
            ), family

    def test_workloads_have_queries_and_deltas_per_instance(self):
        for family in FAMILIES:
            workload = build_workload(family, seed=2)
            assert workload.names
            for name in workload.names:
                assert workload.queries[name]
                assert workload.deltas[name]

    def test_parse_cells_wildcards_and_errors(self):
        assert parse_cells("paper:batch") == [("paper", "batch")]
        assert parse_cells("gadget:*") == [
            ("gadget", mode) for mode in sorted(MODES)
        ]
        assert len(parse_cells("*:*")) == len(default_matrix())
        assert parse_cells("paper:batch,paper:batch") == [("paper", "batch")]
        with pytest.raises(ValueError):
            parse_cells("paper")
        with pytest.raises(ValueError):
            parse_cells("nope:batch")
        with pytest.raises(ValueError):
            parse_cells("paper:nope")
        with pytest.raises(ValueError):
            parse_cells("")


@pytest.mark.scenarios_smoke
class TestSmokeCells:
    """The 4-cell smoke run tier-1 CI executes explicitly."""

    @pytest.mark.parametrize("family,mode", SMOKE_CELLS)
    def test_cell_verifies_cleanly(self, family, mode):
        record = run_cell(family, mode, seed=7)
        assert record.answered > 0
        assert record.verified == record.answered
        assert record.mismatches == []
        assert record.errors == {}
        assert record.ok
        if mode.startswith("serve"):
            assert record.final_ok is True
        assert record.route_mix  # at least one engine route exercised


class TestCells:
    def test_gadget_cells_take_the_sat_route(self):
        record = run_cell("gadget", "batch", seed=1)
        assert record.route_mix.get("sat", 0) >= 1
        assert record.mismatches == []

    def test_stream_cells_hit_the_incremental_path(self):
        record = run_cell("firehose", "stream", seed=4)
        assert record.counters["incremental_hits"] > 0
        assert record.mismatches == []

    def test_chaos_serve_thread_cell_survives_and_verifies(self):
        chaos = default_chaos_spec(13)
        record = run_cell("random", "serve-thread", seed=13, chaos=chaos)
        assert record.chaos == chaos
        assert record.verified == record.answered
        assert record.final_ok is True
        injected = record.counters["faults_injected"]
        assert injected.get("crash", 0) >= 1  # the schedule actually fired

    def test_chaos_is_not_armed_on_engine_direct_modes(self):
        record = run_cell("paper", "batch", seed=0, chaos=default_chaos_spec(0))
        assert record.chaos is None
        assert record.mismatches == []

    def test_canonical_report_is_byte_identical_across_runs(self):
        """Satellite: same --seed, same bytes -- including a serving cell."""
        cells = [
            ("paper", "batch"),
            ("gadget", "stream"),
            ("planted", "serve-thread"),
        ]
        first = render_report(run_matrix(cells, seed=11), include_timing=False)
        second = render_report(run_matrix(cells, seed=11), include_timing=False)
        assert first == second
        payload = json.loads(first)
        assert payload["scenarios"]["totals"]["mismatches"] == 0
        assert [b["name"] for b in payload["benchmarks"]] == [
            "scenario[paper:batch]",
            "scenario[gadget:stream]",
            "scenario[planted:serve-thread]",
        ]

    def test_full_report_carries_timing_and_counters(self):
        payload = json.loads(
            render_report([run_cell("paper", "batch", seed=0)])
        )
        cell = payload["scenarios"]["cells"][0]
        assert "wall_seconds" in cell and "counters" in cell
        bench = payload["benchmarks"][0]
        assert bench["stats"]["rounds"] == 1
        assert bench["extra_info"]["notes"].startswith("verified ")


class TestCli:
    def test_scenarios_subcommand_writes_valid_report(self, tmp_path):
        out = tmp_path / "BENCH_scenarios.json"
        proc = subprocess.run(
            [
                sys.executable, "-m", "repro", "scenarios",
                "--cells", "paper:batch,gadget:batch",
                "--seed", "3", "--out", str(out), "--canonical",
            ],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stderr
        assert "2 cells" in proc.stdout
        payload = json.loads(out.read_text())
        assert len(payload["benchmarks"]) == 2
        assert payload["scenarios"]["totals"]["mismatches"] == 0

    def test_scenarios_list_names_both_axes(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "scenarios", "--list"],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0
        for name in list(FAMILIES) + list(MODES):
            assert name in proc.stdout


@pytest.mark.slow
class TestFullMatrix:
    """Every family x every mode, including serve-process, verified."""

    def test_default_matrix_verifies_every_cell(self):
        records = run_matrix(seed=0)
        assert len(records) == len(default_matrix())
        for record in records:
            assert record.answered > 0, record.cell
            assert record.verified == record.answered, record.cell
            assert record.mismatches == [], record.cell
            if record.mode.startswith("serve"):
                assert record.final_ok is True, record.cell

    def test_chaos_matrix_on_serving_modes(self):
        cells = [(f, "serve-thread") for f in FAMILIES]
        records = run_matrix(cells, seed=5, chaos=default_chaos_spec(5))
        for record in records:
            assert record.verified == record.answered, record.cell
            assert record.final_ok is True, record.cell
