"""Unit + property tests for prefixes/suffixes/factors (and Lemma 22)."""

from hypothesis import given, strategies as st

from repro.words.factors import (
    consecutive_triples,
    factors,
    has_border_period,
    is_factor,
    is_prefix,
    is_proper_prefix,
    is_proper_suffix,
    is_self_join_free,
    is_suffix,
    occurrences,
    prefixes,
    proper_prefixes,
    self_join_pairs,
    suffixes,
)
from repro.words.word import Word

words = st.text(alphabet="RSX", max_size=8).map(Word)


class TestPrefixSuffixFactor:
    def test_prefix_basics(self):
        assert is_prefix("", "RX")
        assert is_prefix("R", "RX")
        assert is_prefix("RX", "RX")
        assert not is_prefix("X", "RX")
        assert not is_prefix("RXY", "RX")

    def test_proper_prefix(self):
        assert is_proper_prefix("R", "RX")
        assert not is_proper_prefix("RX", "RX")

    def test_suffix_basics(self):
        assert is_suffix("", "RX")
        assert is_suffix("X", "RX")
        assert is_suffix("RX", "RX")
        assert not is_suffix("R", "RX")

    def test_proper_suffix(self):
        assert is_proper_suffix("X", "RX")
        assert not is_proper_suffix("RX", "RX")

    def test_factor(self):
        assert is_factor("XR", "RXRY")
        assert not is_factor("RY", "RXR")
        assert is_factor("", "R")

    def test_occurrences(self):
        assert occurrences("R", "RXRR") == (0, 2, 3)
        assert occurrences("RR", "RRR") == (0, 1)
        assert occurrences("Z", "RX") == ()

    def test_prefix_suffix_lists(self):
        w = Word("RX")
        assert prefixes(w) == [Word(""), Word("R"), Word("RX")]
        assert proper_prefixes(w) == [Word(""), Word("R")]
        assert suffixes(w) == [Word(""), Word("X"), Word("RX")]

    def test_factors_distinct_sorted(self):
        fs = factors("RR")
        assert fs == [Word(""), Word("R"), Word("RR")]


class TestSelfJoins:
    def test_self_join_free(self):
        assert is_self_join_free("RXY")
        assert not is_self_join_free("RXR")
        assert is_self_join_free("")

    def test_self_join_pairs(self):
        assert list(self_join_pairs("RXR")) == [(0, 2)]
        assert list(self_join_pairs("RR")) == [(0, 1)]
        assert list(self_join_pairs("RXY")) == []

    def test_consecutive_triples(self):
        # R at 0, 2, 4: one consecutive triple.
        assert list(consecutive_triples("RXRXR")) == [(0, 2, 4)]
        # R at 0, 1, 2, 3: two consecutive triples.
        assert list(consecutive_triples("RRRR")) == [(0, 1, 2), (1, 2, 3)]
        assert list(consecutive_triples("RXR")) == []


class TestLemma22:
    def test_border_period_example(self):
        # w = RXR is a prefix of u·w with u = RX: w prefix of (RX)^|w|.
        assert has_border_period("RXR", "RX")

    @given(u=st.text(alphabet="RSX", min_size=1, max_size=4).map(Word),
           n=st.integers(min_value=0, max_value=4),
           extra=st.integers(min_value=0, max_value=3))
    def test_lemma22_property(self, u, n, extra):
        """If w is a prefix of u·w then w is a prefix of u^|w| (Lemma 22)."""
        w = (u * n)[: max(0, n * len(u) - extra)]
        if not w:
            return
        assert is_prefix(w, u + w)
        assert has_border_period(w, u)


class TestFactorProperties:
    @given(words, words)
    def test_prefix_implies_factor(self, a, b):
        if is_prefix(a, b):
            assert is_factor(a, b)
        if is_suffix(a, b):
            assert is_factor(a, b)

    @given(words, words, words)
    def test_middle_is_factor(self, a, b, c):
        assert is_factor(b, a + b + c)

    @given(words, words)
    def test_occurrences_consistent(self, a, b):
        offs = occurrences(a, b)
        assert (len(offs) > 0) == is_factor(a, b) or len(a) == 0
        for off in offs:
            assert b[off: off + len(a)] == a
