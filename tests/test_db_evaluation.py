"""Tests for query evaluation over single instances."""

import random

from repro.db.instance import DatabaseInstance
from repro.db.evaluation import (
    generalized_query_satisfied,
    path_query_satisfied,
    query_satisfied,
    rooted_path_query_satisfied,
)
from repro.db.paths import has_path_with_trace
from repro.queries.generalized import GeneralizedPathQuery
from repro.queries.path_query import PathQuery
from repro.workloads.generators import random_instance


class TestPathQuerySatisfaction:
    def test_simple(self):
        db = DatabaseInstance.from_triples([("R", 0, 1), ("R", 1, 2), ("X", 2, 3)])
        assert path_query_satisfied("RRX", db)
        assert not path_query_satisfied("RRR", db)

    def test_empty_query_always_true(self):
        assert path_query_satisfied("", DatabaseInstance.empty())

    def test_nonempty_query_on_empty_instance(self):
        assert not path_query_satisfied("R", DatabaseInstance.empty())

    def test_walk_reuses_facts(self):
        db = DatabaseInstance.from_triples([("R", 0, 0)])
        assert path_query_satisfied("RRRRRR", db)

    def test_agrees_with_path_search(self, rng):
        for _ in range(60):
            db = random_instance(rng, 4, rng.randint(1, 9), ("R", "X"), 0.4)
            word = rng.choice(["R", "RX", "RRX", "RR", "XX"])
            assert path_query_satisfied(word, db) == has_path_with_trace(db, word)

    def test_agrees_with_conjunctive_evaluation(self, rng):
        for _ in range(40):
            db = random_instance(rng, 4, rng.randint(1, 8), ("R", "X"), 0.4)
            word = rng.choice(["R", "RX", "RR", "RXR"])
            cq = PathQuery(word).to_conjunctive_query()
            assert path_query_satisfied(word, db) == query_satisfied(cq, db)


class TestRootedSatisfaction:
    def test_rooted(self):
        db = DatabaseInstance.from_triples([("R", 0, 1), ("R", 1, 2)])
        assert rooted_path_query_satisfied("RR", 0, db)
        assert not rooted_path_query_satisfied("RR", 1, db)

    def test_unknown_root(self):
        db = DatabaseInstance.from_triples([("R", 0, 1)])
        assert not rooted_path_query_satisfied("R", 99, db)


class TestGeneralizedSatisfaction:
    def test_terminal_constant(self):
        q = GeneralizedPathQuery("RS", {2: "t"})
        db = DatabaseInstance.from_triples([("R", "a", "b"), ("S", "b", "t")])
        assert generalized_query_satisfied(q, db)
        db2 = DatabaseInstance.from_triples([("R", "a", "b"), ("S", "b", "u")])
        assert not generalized_query_satisfied(q, db2)

    def test_mid_constant(self):
        q = GeneralizedPathQuery("RS", {1: "m"})
        db = DatabaseInstance.from_triples([("R", "a", "m"), ("S", "m", "z")])
        assert generalized_query_satisfied(q, db)
        db2 = DatabaseInstance.from_triples([("R", "a", "b"), ("S", "b", "z")])
        assert not generalized_query_satisfied(q, db2)

    def test_agrees_with_conjunctive_evaluation(self, rng):
        for _ in range(60):
            db = random_instance(rng, 4, rng.randint(1, 8), ("R", "S"), 0.4)
            word = rng.choice(["R", "RS", "RSR"])
            nodes = [None] * (len(word) + 1)
            position = rng.randrange(len(nodes))
            nodes[position] = rng.choice(sorted(db.adom()))
            q = GeneralizedPathQuery(word, nodes=nodes)
            expected = query_satisfied(q.to_conjunctive_query(), db)
            assert generalized_query_satisfied(q, db) == expected
