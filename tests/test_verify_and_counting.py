"""Tests for certificate verification and ♯CERTAINTY baselines."""

import pytest

from repro.db.instance import DatabaseInstance
from repro.db.repairs import count_repairs
from repro.solvers.certainty import certain_answer
from repro.solvers.counting import (
    RepairCount,
    count_satisfying_repairs,
    estimate_satisfying_fraction,
)
from repro.solvers.result import CertaintyResult
from repro.solvers.verify import verify_result
from repro.workloads.generators import random_instance
from repro.workloads.paper_instances import figure2_instance, figure3_instance


class TestVerifyResult:
    def test_verifies_genuine_results(self, rng):
        for _ in range(30):
            db = random_instance(rng, 4, rng.randint(2, 9), ("R", "X"), 0.5)
            for q in ("RRX", "RXRX", "RXRYRY"):
                result = certain_answer(db, q)
                report = verify_result(db, q, result)
                assert report.ok, report.failures

    def test_figure_instances(self):
        for db, q in ((figure2_instance(), "RRX"), (figure3_instance(), "ARRX")):
            result = certain_answer(db, q)
            assert verify_result(db, q, result).ok

    def test_rejects_flipped_answer(self):
        db = figure2_instance()
        result = certain_answer(db, "RRX")
        forged = CertaintyResult(query="RRX", answer=False, method="forged")
        report = verify_result(db, "RRX", forged)
        assert not report.ok
        assert any("enumeration" in f for f in report.failures)
        assert result.answer  # genuine answer unchanged

    def test_rejects_bogus_repair_certificate(self):
        db = figure2_instance()
        bogus = CertaintyResult(
            query="RRX",
            answer=False,
            method="forged",
            falsifying_repair=DatabaseInstance.from_triples([("R", 9, 9)]),
        )
        report = verify_result(db, "RRX", bogus)
        assert not report.ok

    def test_rejects_bad_witness(self):
        db = figure2_instance()
        forged = CertaintyResult(
            query="RRX", answer=True, method="forged", witness_constant=4
        )
        report = verify_result(db, "RRX", forged)
        assert not report.ok
        assert any("witness" in f for f in report.failures)

    def test_skips_enumeration_when_too_large(self):
        db = figure2_instance()
        result = certain_answer(db, "RRX")
        report = verify_result(db, "RRX", result, full_enumeration_limit=1)
        assert report.ok  # nothing falsifiable was checked
        assert any("nothing verifiable" in c for c in report.checks)


class TestCounting:
    def test_exact_count(self):
        db = figure2_instance()
        count = count_satisfying_repairs(db, "RRX")
        assert count == RepairCount(total=2, satisfying=2)
        assert count.certain
        assert count.fraction == 1.0

    def test_partial_count(self):
        db = DatabaseInstance.from_triples(
            [("R", 0, 1), ("R", 0, 9), ("R", 1, 2)]
        )
        count = count_satisfying_repairs(db, "RR")
        assert count.total == 2
        assert count.satisfying == 1
        assert not count.certain

    def test_certain_iff_all(self, rng):
        for _ in range(30):
            db = random_instance(rng, 4, rng.randint(2, 9), ("R", "X"), 0.5)
            if count_repairs(db) > 3000:
                continue
            for q in ("RRX", "RXRX"):
                count = count_satisfying_repairs(db, q)
                assert count.certain == certain_answer(db, q).answer

    def test_limit_guard(self):
        facts = []
        for block in range(25):
            facts += [("R", block, 0), ("R", block, 1)]
        db = DatabaseInstance.from_triples(facts)
        with pytest.raises(RuntimeError):
            count_satisfying_repairs(db, "RR", repair_limit=100)

    def test_monte_carlo_converges(self, rng):
        db = DatabaseInstance.from_triples(
            [("R", 0, 1), ("R", 0, 9), ("R", 1, 2)]
        )
        exact = count_satisfying_repairs(db, "RR").fraction
        estimate = estimate_satisfying_fraction(db, "RR", 2000, rng)
        assert abs(estimate - exact) < 0.05

    def test_monte_carlo_needs_samples(self, rng):
        with pytest.raises(ValueError):
            estimate_satisfying_fraction(figure2_instance(), "RRX", 0, rng)
