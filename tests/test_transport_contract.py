"""The cross-process wire contract behind the serving transports.

The :class:`~repro.serving.transport.ProcessTransport` (and the engine's
worker pools) depend on two pickling contracts:

* :meth:`repro.db.instance.DatabaseInstance.__reduce__` ships **facts
  only** -- no compact views, no process-local interner ids cross the
  wire; the receiver rebuilds indexes and compiles its *own* compact
  view against its *own* interner and reaches identical answers;
* :class:`repro.solvers.result.LazyMinimalRepair` survives the hop
  **unresolved** -- the O(db) Lemma 9 construction is not forced at
  pickle time, and resolving it on the receiving side yields the same
  repair the sender would have built.

These tests round-trip real payloads through a fresh interpreter (a
``subprocess``, not a fork -- a forked child would share the parent's
interner pages and prove nothing).
"""

import os
import pickle
import subprocess
import sys
from pathlib import Path

from repro.db.instance import DatabaseInstance
from repro.engine import CertaintyEngine
from repro.solvers.fixpoint import certain_answer_fixpoint
from repro.solvers.result import LazyMinimalRepair
from repro.workloads.generators import chain_instance

SRC = str(Path(__file__).resolve().parent.parent / "src")

QUERIES = ["RXRX", "RRX", "RXRYRY"]

#: Runs in a fresh interpreter: verify the received payload, answer the
#: queries, rebuild the compact view, resolve the lazy certificate, and
#: report everything back as plain data for the parent to compare.
CHILD_SCRIPT = """
import pickle, sys

with open(sys.argv[1], "rb") as handle:
    payload = pickle.load(handle)
db, queries, result = payload["db"], payload["queries"], payload["result"]

report = {}
# The cached compact view must NOT have crossed the wire.
report["compact_cache_empty"] = db._compact is None
# The lazy certificate must arrive unresolved.
report["lazy_on_arrival"] = result.has_lazy_repair

from repro.engine import CertaintyEngine

engine = CertaintyEngine()
report["answers"] = [engine.solve(db, q).answer for q in queries]
report["facts"] = sorted(
    (f.relation, f.key, f.value) for f in db.facts
)
view = db.compact()
report["compact_n"] = view.n
report["compact_relations"] = view.relations
# Resolving here runs the Lemma 9 construction against the *child's*
# own compact view and interner.
repair = result.falsifying_repair
report["repair_facts"] = sorted(
    (f.relation, f.key, f.value) for f in repair.facts
)
report["repair_is_repair"] = repair.is_repair_of(db)

with open(sys.argv[2], "wb") as handle:
    pickle.dump(report, handle)
"""


def _roundtrip_through_fresh_interpreter(tmp_path, payload):
    payload_path = tmp_path / "payload.pkl"
    report_path = tmp_path / "report.pkl"
    with open(payload_path, "wb") as handle:
        pickle.dump(payload, handle)
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    completed = subprocess.run(
        [sys.executable, "-c", CHILD_SCRIPT, str(payload_path), str(report_path)],
        env=env,
        capture_output=True,
        text=True,
    )
    assert completed.returncode == 0, completed.stderr
    with open(report_path, "rb") as handle:
        return pickle.load(handle)


def test_child_rebuilds_identical_view_and_answers(tmp_path):
    db = chain_instance("RRX", repetitions=4, conflict_every=3)
    # Force the parent-side caches the wire must NOT carry: the compact
    # view (interned ids) and the engine's per-instance state.
    parent_view = db.compact()
    engine = CertaintyEngine()
    parent_answers = [engine.solve(db, q).answer for q in QUERIES]

    # A genuine lazy "no" certificate, unresolved on the parent side.
    no_instance = DatabaseInstance.from_triples(
        [("R", 0, 1), ("R", 1, 2), ("R", 1, 9)]
    )
    result = certain_answer_fixpoint(no_instance, "RRX")
    assert result.answer is False
    assert result.has_lazy_repair

    payload = {"db": db, "queries": QUERIES, "result": result}
    wire = pickle.dumps(payload)
    # Facts-only on the wire: neither the compact module nor the
    # interner module is referenced by the pickle stream.
    assert b"interner" not in wire
    assert b"compact" not in wire
    # ... and pickling did not force the certificate.
    assert result.has_lazy_repair

    report = _roundtrip_through_fresh_interpreter(tmp_path, payload)
    assert report["compact_cache_empty"] is True
    assert report["lazy_on_arrival"] is True
    assert report["answers"] == parent_answers
    assert report["facts"] == sorted(
        (f.relation, f.key, f.value) for f in db.facts
    )
    # Same shape of the rebuilt view: same domain size, same relations
    # (the ids inside are process-local and deliberately incomparable).
    assert report["compact_n"] == parent_view.n
    assert report["compact_relations"] == parent_view.relations


def test_lazy_repair_resolves_identically_across_the_hop(tmp_path):
    chain = chain_instance("RXRYRY", repetitions=3, conflict_every=2)
    # Drop every Y fact: no complete q-path survives, so CERTAINTY is a
    # "no" and the fixpoint route attaches a LazyMinimalRepair (the only
    # certificate kind whose laziness is *data*, hence wire-safe).
    db = DatabaseInstance([f for f in chain.facts if f.relation != "Y"])
    result = certain_answer_fixpoint(db, "RXRYRY")
    assert result.answer is False
    assert result.has_lazy_repair

    payload = {"db": db, "queries": ["RXRYRY"], "result": result}
    report = _roundtrip_through_fresh_interpreter(tmp_path, payload)
    assert report["lazy_on_arrival"] is True
    assert report["repair_is_repair"] is True
    # The Lemma 9 construction is deterministic in the facts: resolving
    # in the child equals resolving in the parent.
    parent_repair = result.falsifying_repair
    assert report["repair_facts"] == sorted(
        (f.relation, f.key, f.value) for f in parent_repair.facts
    )


def test_snapshot_bytes_reflects_snapshot_traffic_only():
    """``snapshot_bytes`` bills register ops by their own wire size.

    A mixed batch -- one small registration riding with a solve that
    carries a large ad-hoc instance -- must bill only the register op:
    each op is pickled to its own frame slice, so solve/delta companions
    never inflate the snapshot counter.
    """
    from repro.serving import ShardRequest, ShardWorker

    small = DatabaseInstance.from_triples([("R", 0, 1), ("X", 1, 2)])
    big = chain_instance("RXRYRY", repetitions=60, conflict_every=2)
    big_wire = len(pickle.dumps(big, protocol=pickle.HIGHEST_PROTOCOL))

    worker = ShardWorker(0, transport="process")
    try:
        worker.execute([ShardRequest("register", name="small", db=small)])
        baseline = worker.stats()["transport"]["snapshot_bytes"]
        assert baseline > 0
        register = ShardRequest("register", name="small2", db=small)
        solve = ShardRequest("solve", db=big, query="RXRX")
        worker.execute([register, solve])
        assert solve.result.answer is not None
        billed = worker.stats()["transport"]["snapshot_bytes"] - baseline
        # The registered instance is tiny; the ad-hoc solve payload is
        # not.  Billing the whole batch would cost >= big_wire.
        assert 0 < billed < big_wire
        # And a pure-read batch bills nothing at all.
        read = ShardRequest("solve", name="small", query="RXRX")
        worker.execute([read])
        assert (
            worker.stats()["transport"]["snapshot_bytes"] - baseline == billed
        )
    finally:
        worker.stop()


def test_lazy_minimal_repair_reduce_is_data_only():
    db = DatabaseInstance.from_triples([("R", 0, 1), ("R", 0, 2)])
    lazy = LazyMinimalRepair(db, "R")
    rebuilt = pickle.loads(pickle.dumps(lazy))
    assert isinstance(rebuilt, LazyMinimalRepair)
    assert rebuilt.db == db
    assert rebuilt() == lazy()
