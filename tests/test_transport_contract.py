"""The cross-process wire contract behind the serving transports.

The :class:`~repro.serving.transport.ProcessTransport` (and the engine's
worker pools) depend on two pickling contracts:

* :meth:`repro.db.instance.DatabaseInstance.__reduce__` ships **facts
  only** -- no compact views, no process-local interner ids cross the
  wire; the receiver rebuilds indexes and compiles its *own* compact
  view against its *own* interner and reaches identical answers;
* :class:`repro.solvers.result.LazyMinimalRepair` survives the hop
  **unresolved** -- the O(db) Lemma 9 construction is not forced at
  pickle time, and resolving it on the receiving side yields the same
  repair the sender would have built.

These tests round-trip real payloads through a fresh interpreter (a
``subprocess``, not a fork -- a forked child would share the parent's
interner pages and prove nothing).
"""

import glob
import os
import pickle
import subprocess
import sys
from array import array
from pathlib import Path

import pytest

from repro.db.instance import DatabaseInstance
from repro.db.interner import global_interner
from repro.engine import CertaintyEngine
from repro.serving import ShardRequest
from repro.serving.transport import (
    ProcessTransport,
    ShardTransportError,
    _decode_snapshot,
    _encode_snapshot,
)
from repro.solvers.fixpoint import certain_answer_fixpoint
from repro.solvers.result import LazyMinimalRepair
from repro.workloads.generators import chain_instance

SRC = str(Path(__file__).resolve().parent.parent / "src")

QUERIES = ["RXRX", "RRX", "RXRYRY"]

#: Runs in a fresh interpreter: verify the received payload, answer the
#: queries, rebuild the compact view, resolve the lazy certificate, and
#: report everything back as plain data for the parent to compare.
CHILD_SCRIPT = """
import pickle, sys

with open(sys.argv[1], "rb") as handle:
    payload = pickle.load(handle)
db, queries, result = payload["db"], payload["queries"], payload["result"]

report = {}
# The cached compact view must NOT have crossed the wire.
report["compact_cache_empty"] = db._compact is None
# The lazy certificate must arrive unresolved.
report["lazy_on_arrival"] = result.has_lazy_repair

from repro.engine import CertaintyEngine

engine = CertaintyEngine()
report["answers"] = [engine.solve(db, q).answer for q in queries]
report["facts"] = sorted(
    (f.relation, f.key, f.value) for f in db.facts
)
view = db.compact()
report["compact_n"] = view.n
report["compact_relations"] = view.relations
# Resolving here runs the Lemma 9 construction against the *child's*
# own compact view and interner.
repair = result.falsifying_repair
report["repair_facts"] = sorted(
    (f.relation, f.key, f.value) for f in repair.facts
)
report["repair_is_repair"] = repair.is_repair_of(db)

with open(sys.argv[2], "wb") as handle:
    pickle.dump(report, handle)
"""


def _roundtrip_through_fresh_interpreter(tmp_path, payload):
    payload_path = tmp_path / "payload.pkl"
    report_path = tmp_path / "report.pkl"
    with open(payload_path, "wb") as handle:
        pickle.dump(payload, handle)
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    completed = subprocess.run(
        [sys.executable, "-c", CHILD_SCRIPT, str(payload_path), str(report_path)],
        env=env,
        capture_output=True,
        text=True,
    )
    assert completed.returncode == 0, completed.stderr
    with open(report_path, "rb") as handle:
        return pickle.load(handle)


def test_child_rebuilds_identical_view_and_answers(tmp_path):
    db = chain_instance("RRX", repetitions=4, conflict_every=3)
    # Force the parent-side caches the wire must NOT carry: the compact
    # view (interned ids) and the engine's per-instance state.
    parent_view = db.compact()
    engine = CertaintyEngine()
    parent_answers = [engine.solve(db, q).answer for q in QUERIES]

    # A genuine lazy "no" certificate, unresolved on the parent side.
    no_instance = DatabaseInstance.from_triples(
        [("R", 0, 1), ("R", 1, 2), ("R", 1, 9)]
    )
    result = certain_answer_fixpoint(no_instance, "RRX")
    assert result.answer is False
    assert result.has_lazy_repair

    payload = {"db": db, "queries": QUERIES, "result": result}
    wire = pickle.dumps(payload)
    # Facts-only on the wire: neither the compact module nor the
    # interner module is referenced by the pickle stream.
    assert b"interner" not in wire
    assert b"compact" not in wire
    # ... and pickling did not force the certificate.
    assert result.has_lazy_repair

    report = _roundtrip_through_fresh_interpreter(tmp_path, payload)
    assert report["compact_cache_empty"] is True
    assert report["lazy_on_arrival"] is True
    assert report["answers"] == parent_answers
    assert report["facts"] == sorted(
        (f.relation, f.key, f.value) for f in db.facts
    )
    # Same shape of the rebuilt view: same domain size, same relations
    # (the ids inside are process-local and deliberately incomparable).
    assert report["compact_n"] == parent_view.n
    assert report["compact_relations"] == parent_view.relations


def test_lazy_repair_resolves_identically_across_the_hop(tmp_path):
    chain = chain_instance("RXRYRY", repetitions=3, conflict_every=2)
    # Drop every Y fact: no complete q-path survives, so CERTAINTY is a
    # "no" and the fixpoint route attaches a LazyMinimalRepair (the only
    # certificate kind whose laziness is *data*, hence wire-safe).
    db = DatabaseInstance([f for f in chain.facts if f.relation != "Y"])
    result = certain_answer_fixpoint(db, "RXRYRY")
    assert result.answer is False
    assert result.has_lazy_repair

    payload = {"db": db, "queries": ["RXRYRY"], "result": result}
    report = _roundtrip_through_fresh_interpreter(tmp_path, payload)
    assert report["lazy_on_arrival"] is True
    assert report["repair_is_repair"] is True
    # The Lemma 9 construction is deterministic in the facts: resolving
    # in the child equals resolving in the parent.
    parent_repair = result.falsifying_repair
    assert report["repair_facts"] == sorted(
        (f.relation, f.key, f.value) for f in parent_repair.facts
    )


def test_snapshot_bytes_reflects_snapshot_traffic_only():
    """``snapshot_bytes`` bills register ops by their own wire size.

    A mixed batch -- one small registration riding with a solve that
    carries a large ad-hoc instance -- must bill only the register op:
    each op is pickled to its own frame slice, so solve/delta companions
    never inflate the snapshot counter.
    """
    from repro.serving import ShardRequest, ShardWorker

    small = DatabaseInstance.from_triples([("R", 0, 1), ("X", 1, 2)])
    big = chain_instance("RXRYRY", repetitions=60, conflict_every=2)
    big_wire = len(pickle.dumps(big, protocol=pickle.HIGHEST_PROTOCOL))

    worker = ShardWorker(0, transport="process")
    try:
        worker.execute([ShardRequest("register", name="small", db=small)])
        baseline = worker.stats()["transport"]["snapshot_bytes"]
        assert baseline > 0
        register = ShardRequest("register", name="small2", db=small)
        solve = ShardRequest("solve", db=big, query="RXRX")
        worker.execute([register, solve])
        assert solve.result.answer is not None
        billed = worker.stats()["transport"]["snapshot_bytes"] - baseline
        # The registered instance is tiny; the ad-hoc solve payload is
        # not.  Billing the whole batch would cost >= big_wire.
        assert 0 < billed < big_wire
        # And a pure-read batch bills nothing at all.
        read = ShardRequest("solve", name="small", query="RXRX")
        worker.execute([read])
        assert (
            worker.stats()["transport"]["snapshot_bytes"] - baseline == billed
        )
    finally:
        worker.stop()


def test_lazy_minimal_repair_reduce_is_data_only():
    db = DatabaseInstance.from_triples([("R", 0, 1), ("R", 0, 2)])
    lazy = LazyMinimalRepair(db, "R")
    rebuilt = pickle.loads(pickle.dumps(lazy))
    assert isinstance(rebuilt, LazyMinimalRepair)
    assert rebuilt.db == db
    assert rebuilt() == lazy()


# ----------------------------------------------------------------------
# Shared-memory snapshots: the shm flavor of the same hygiene contract
# ----------------------------------------------------------------------


def _snapshot_stream(payload):
    """Split an encoded snapshot into its symbol tables and id stream."""
    tables_len = int.from_bytes(payload[:8], "little")
    rels, consts = pickle.loads(payload[8 : 8 + tables_len])
    stream = array("q")
    stream.frombytes(payload[8 + tables_len :])
    return rels, consts, stream.tolist()


def test_shm_snapshot_ids_are_snapshot_local_not_interner_ids():
    """Every id in the shm stream indexes the shipped tables.

    The process-wide interner is deliberately pushed far past any dense
    snapshot-local index first: had the encoder leaked interner ids, the
    stream would carry values >= the junk floor and the walk would trip.
    """
    for i in range(10_000):
        global_interner().constant_id(("junk-gid", i))
    db = chain_instance("RRX", repetitions=40, conflict_every=3)
    db.compact()  # interns this instance's constants process-wide too
    payload = _encode_snapshot(db)
    rels, consts, ids = _snapshot_stream(payload)
    index = 0
    while index < len(ids):
        rel_id, key_id, count = ids[index], ids[index + 1], ids[index + 2]
        assert 0 <= rel_id < len(rels)
        assert 0 <= key_id < len(consts)
        for value_id in ids[index + 3 : index + 3 + count]:
            assert 0 <= value_id < len(consts)
        index += 3 + count
    decoded = _decode_snapshot(payload)
    assert decoded.facts == db.facts
    assert decoded.adom() == db.adom()
    assert decoded._out_index == db._out_index


@pytest.mark.parametrize("slot", [1, 3])
def test_shm_decode_rejects_foreign_ids(slot):
    """An id outside the shipped tables (an interner leak) is rejected
    outright -- never resolved against the receiver's interner."""
    db = DatabaseInstance.from_triples([("R", 0, 1), ("R", 1, 2)])
    payload = _encode_snapshot(db)
    tables_len = int.from_bytes(payload[:8], "little")
    head = payload[: 8 + tables_len]
    stream = array("q")
    stream.frombytes(payload[8 + tables_len :])
    ids = stream.tolist()
    ids[slot] = 987_654  # where a snapshot-local key/value id belongs
    with pytest.raises(ShardTransportError):
        _decode_snapshot(head + array("q", ids).tobytes())


def test_shm_register_round_trip_and_segment_cleanup():
    """Registration above the threshold ships via shm, answers match the
    in-process engine, and no segment outlives its batch."""
    before = set(glob.glob("/dev/shm/psm_*"))
    db = chain_instance("RXRYRY", repetitions=30, conflict_every=2)
    transport = ProcessTransport(0, shm_threshold=0)
    transport.start()
    try:
        register = ShardRequest("register", name="resident", db=db)
        transport.execute([register])
        assert register.error is None
        assert transport.health()["snapshot_shm"] > 0
        # Segments are released with their batch, not held until stop.
        assert transport._segments == []
        if os.path.isdir("/dev/shm"):
            assert set(glob.glob("/dev/shm/psm_*")) <= before
        solve = ShardRequest("solve", name="resident", query="RXRYRY")
        transport.execute([solve])
        assert (
            solve.result.answer
            == CertaintyEngine().solve(db, "RXRYRY").answer
        )
    finally:
        transport.stop()
    if os.path.isdir("/dev/shm"):
        assert set(glob.glob("/dev/shm/psm_*")) <= before


def test_shm_disabled_below_threshold():
    """Small snapshots stay on the pickled-frame path untouched."""
    db = DatabaseInstance.from_triples([("R", 0, 1), ("X", 1, 2)])
    transport = ProcessTransport(0)  # default 256 KiB threshold
    transport.start()
    try:
        register = ShardRequest("register", name="tiny", db=db)
        transport.execute([register])
        assert register.error is None
        health = transport.health()
        assert health["snapshot_shm"] == 0
        assert health["snapshot_bytes"] > 0
    finally:
        transport.stop()
