"""Tests for non-Boolean certain answers (free variables as constants)."""

from repro.db.evaluation import rooted_path_query_satisfied
from repro.db.instance import DatabaseInstance
from repro.db.paths import has_path_with_trace
from repro.db.repairs import count_repairs, iter_repairs
from repro.solvers.answers import certain_head_answers, certain_tail_answers
from repro.workloads.generators import random_instance


class TestHeadAnswers:
    def test_chain(self):
        db = DatabaseInstance.from_triples(
            [("R", 0, 1), ("R", 1, 2), ("R", 2, 3)]
        )
        assert certain_head_answers(db, "RR") == frozenset({0, 1})
        assert certain_head_answers(db, "RRR") == frozenset({0})

    def test_conflict_removes_answers(self):
        db = DatabaseInstance.from_triples(
            [("R", 0, 1), ("R", 1, 2), ("R", 1, 9)]
        )
        # Both choices in block R(1,*) extend 0's path, so 0 stays a
        # certain answer of RR(x); but RRR(x) dies in the repair choosing
        # R(1,9) (no continuation from 9).
        assert certain_head_answers(db, "RR") == frozenset({0})
        assert certain_head_answers(db, "RRR") == frozenset()

    def test_differential(self, rng):
        for _ in range(40):
            db = random_instance(rng, 4, rng.randint(2, 9), ("R", "S"), 0.5)
            if count_repairs(db) > 2000:
                continue
            for q in ("R", "RS", "RR"):
                expected = frozenset(
                    c
                    for c in db.adom()
                    if all(
                        rooted_path_query_satisfied(q, c, repair)
                        for repair in iter_repairs(db)
                    )
                )
                assert certain_head_answers(db, q) == expected


class TestTailAnswers:
    def test_chain(self):
        db = DatabaseInstance.from_triples(
            [("R", 0, 1), ("R", 1, 2), ("R", 2, 3)]
        )
        assert certain_tail_answers(db, "RR") == frozenset({2, 3})

    def test_differential(self, rng):
        for _ in range(25):
            db = random_instance(rng, 4, rng.randint(2, 8), ("R", "S"), 0.5)
            if count_repairs(db) > 1000:
                continue
            for q in ("R", "RS"):
                expected = frozenset(
                    d
                    for d in db.adom()
                    if all(
                        has_path_with_trace(repair, q, end=d)
                        for repair in iter_repairs(db)
                    )
                )
                assert certain_tail_answers(db, q) == expected
