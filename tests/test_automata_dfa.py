"""Tests for DFA operations: subset construction, product, minimization."""

from hypothesis import given, settings, strategies as st

from repro.automata.dfa import DFA
from repro.automata.query_nfa import query_nfa
from repro.words.rewind import enumerate_language
from repro.words.word import Word

words = st.text(alphabet="RSX", min_size=1, max_size=5).map(Word)
inputs = st.text(alphabet="RSX", max_size=7)


def ab_star_dfa():
    """Accepts (ab)*."""
    return DFA(2, ["a", "b"], {(0, "a"): 1, (1, "b"): 0}, [0])


class TestBasics:
    def test_accepts(self):
        dfa = ab_star_dfa()
        assert dfa.accepts("")
        assert dfa.accepts("abab")
        assert not dfa.accepts("a")
        assert not dfa.accepts("ba")

    def test_completed_adds_sink(self):
        dfa = ab_star_dfa().completed()
        assert dfa.n_states == 3
        for state in range(dfa.n_states):
            for symbol in dfa.alphabet:
                assert (state, symbol) in dfa.transitions

    def test_complement(self):
        dfa = ab_star_dfa().complement()
        assert not dfa.accepts("")
        assert dfa.accepts("a")
        assert dfa.accepts("ba")

    def test_is_empty(self):
        assert DFA(1, ["a"], {}, []).is_empty()
        assert not ab_star_dfa().is_empty()

    def test_shortest_accepted(self):
        dfa = DFA(3, ["a"], {(0, "a"): 1, (1, "a"): 2}, [2])
        assert dfa.shortest_accepted() == ("a", "a")
        assert DFA(1, ["a"], {}, []).shortest_accepted() is None

    def test_enumerate_accepted(self):
        dfa = ab_star_dfa()
        accepted = dfa.enumerate_accepted(4)
        assert () in accepted
        assert ("a", "b") in accepted
        assert ("a", "b", "a", "b") in accepted
        assert len(accepted) == 3


class TestProductAndEquivalence:
    def test_intersection(self):
        a = ab_star_dfa()
        b = DFA(1, ["a", "b"], {(0, "a"): 0, (0, "b"): 0}, [0])  # Σ*
        product = a.product(b, "intersection")
        assert product.accepts("abab")
        assert not product.accepts("aa")

    def test_difference_empty_iff_subset(self):
        a = ab_star_dfa()
        sigma_star = DFA(1, ["a", "b"], {(0, "a"): 0, (0, "b"): 0}, [0])
        assert a.product(sigma_star, "difference").is_empty()
        assert not sigma_star.product(a, "difference").is_empty()

    def test_equivalence(self):
        a = ab_star_dfa()
        assert a.equivalent(a.minimized())
        assert not a.equivalent(a.complement())


class TestSubsetConstruction:
    @settings(max_examples=30, deadline=None)
    @given(words, inputs)
    def test_dfa_equals_nfa(self, q, text):
        nfa = query_nfa(q)
        dfa = DFA.from_nfa(nfa)
        assert dfa.accepts(text) == nfa.accepts(text)


class TestShortestPrefixTransform:
    def test_min_language(self):
        """NFAmin(RRX) accepts RR(R)*X and nothing shorter (Def. 13)."""
        dfa = DFA.from_nfa(query_nfa("RRX")).shortest_prefix_transform()
        assert dfa.accepts("RRX")
        assert dfa.accepts("RRRX")
        assert not dfa.accepts("RX")

    @settings(max_examples=25, deadline=None)
    @given(words)
    def test_no_accepted_proper_prefixes(self, q):
        base = DFA.from_nfa(query_nfa(q))
        minimal = base.shortest_prefix_transform()
        for word in enumerate_language(q, len(q) + 3):
            if minimal.accepts(word.symbols):
                for cut in range(len(word)):
                    assert not base.accepts(word.symbols[:cut])


class TestMinimization:
    @settings(max_examples=25, deadline=None)
    @given(words, inputs)
    def test_minimized_preserves_language(self, q, text):
        dfa = DFA.from_nfa(query_nfa(q))
        assert dfa.minimized().accepts(text) == dfa.accepts(text)

    def test_minimized_is_no_larger(self):
        dfa = DFA.from_nfa(query_nfa("RXRRR")).completed()
        assert dfa.minimized().n_states <= dfa.n_states + 1
