"""The documentation system: docs/ pages exist, links resolve, examples run.

Runs ``tools/check_docs.py`` (the same entry point as the CI ``docs``
job) over the real tree, and unit-tests the checker's failure detection
on synthetic content so a broken checker cannot silently pass.
"""

import importlib.util
import os
import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
CHECKER = ROOT / "tools" / "check_docs.py"


def _load_checker():
    spec = importlib.util.spec_from_file_location("check_docs", CHECKER)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


checker = _load_checker()


class TestRealDocs:
    def test_docs_tree_has_the_four_pages(self):
        for page in (
            "architecture.md",
            "api.md",
            "complexity-classes.md",
            "serving.md",
        ):
            assert (ROOT / "docs" / page).is_file(), "docs/{} missing".format(page)

    def test_checker_passes_on_the_repository(self):
        env = dict(os.environ)
        src = str(ROOT / "src")
        env["PYTHONPATH"] = (
            src + os.pathsep + env["PYTHONPATH"]
            if env.get("PYTHONPATH")
            else src
        )
        proc = subprocess.run(
            [sys.executable, str(CHECKER)],
            cwd=str(ROOT),
            env=env,
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert proc.returncode == 0, proc.stderr or proc.stdout
        assert "docs ok" in proc.stdout

    def test_readme_links_into_docs(self):
        readme = (ROOT / "README.md").read_text()
        for page in ("architecture", "api", "complexity-classes", "serving"):
            assert "docs/{}.md".format(page) in readme


class TestCheckerCatchesProblems:
    def test_broken_link_reported(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text("see [here](missing.md)")
        problems = []
        checker.check_links(page, page.read_text(), problems)
        assert problems and "missing.md" in problems[0]

    def test_failing_example_reported(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text("```pycon\n>>> 1 + 1\n3\n```\n")
        problems = []
        ran = checker.check_examples(page, page.read_text(), problems)
        assert ran == 1
        assert problems and "examples failed" in problems[0]

    def test_skip_marker_honored(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text(
            "<!-- doctest: skip -->\n```pycon\n>>> nonsense()\n```\n"
        )
        problems = []
        ran = checker.check_examples(page, page.read_text(), problems)
        assert ran == 0 and problems == []

    def test_blocks_share_a_namespace_in_order(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text(
            "```pycon\n>>> x = 41\n```\nprose\n```pycon\n>>> x + 1\n42\n```\n"
        )
        problems = []
        ran = checker.check_examples(page, page.read_text(), problems)
        assert ran == 2 and problems == []

    def test_phantom_api_reference_reported(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text("call `repro.engine.no_such_thing` today")
        problems = []
        checker.check_api_references(page, page.read_text(), problems)
        assert problems and "repro.engine.no_such_thing" in problems[0]

    def test_real_api_reference_resolves(self):
        assert checker._resolves("repro.serving.AsyncCertaintyServer")
        assert checker._resolves("repro.solvers.state_cache.StateCache")
        assert not checker._resolves("repro.not_a_module")
