"""Tests for B1, B2a, B2b, B3 and the Section 4 equivalences (Lemmas 1-3)."""

from hypothesis import given, settings, strategies as st

from repro.classification.conditions import (
    satisfies_c1,
    satisfies_c2,
    satisfies_c3,
)
from repro.classification.regex_conditions import (
    find_b1,
    find_b2a,
    find_b2b,
    find_b3,
    satisfies_b1,
    satisfies_b2a,
    satisfies_b2b,
    satisfies_b3,
)
from repro.words.factors import is_factor, is_prefix, is_self_join_free
from repro.words.word import Word

words = st.text(alphabet="RSX", max_size=7).map(Word)


class TestWitnessesAreValid:
    @settings(max_examples=150, deadline=None)
    @given(words)
    def test_b1_witness(self, q):
        witness = find_b1(q)
        if witness is None:
            return
        assert is_self_join_free(witness.v + witness.w)
        assert is_prefix(q, witness.pumped)

    @settings(max_examples=150, deadline=None)
    @given(words)
    def test_b2a_witness(self, q):
        witness = find_b2a(q)
        if witness is None:
            return
        assert is_self_join_free(witness.u + witness.v + witness.w)
        assert witness.pumped == witness.u * witness.j + witness.w + witness.v * witness.k
        assert witness.pumped[witness.offset: witness.offset + len(q)] == q

    @settings(max_examples=150, deadline=None)
    @given(words)
    def test_b2b_witness(self, q):
        witness = find_b2b(q)
        if witness is None:
            return
        assert is_self_join_free(witness.u + witness.v + witness.w)
        assert witness.pumped == (witness.u + witness.v) * witness.k + witness.w + witness.v
        assert witness.pumped[witness.offset: witness.offset + len(q)] == q

    @settings(max_examples=150, deadline=None)
    @given(words)
    def test_b3_witness(self, q):
        witness = find_b3(q)
        if witness is None:
            return
        assert is_self_join_free(witness.u + witness.v + witness.w)
        assert witness.pumped == witness.u + witness.w + (witness.u + witness.v) * witness.k
        assert is_factor(q, witness.pumped)


class TestSection4Equivalences:
    @settings(max_examples=200, deadline=None)
    @given(words)
    def test_lemma1_c1_equals_b1(self, q):
        assert satisfies_c1(q) == satisfies_b1(q)

    @settings(max_examples=120, deadline=None)
    @given(words)
    def test_lemma3_c2_equals_b2a_or_b2b(self, q):
        assert satisfies_c2(q) == (satisfies_b2a(q) or satisfies_b2b(q))

    @settings(max_examples=120, deadline=None)
    @given(words)
    def test_lemma2_c3_equals_b2a_b2b_b3(self, q):
        assert satisfies_c3(q) == (
            satisfies_b2a(q) or satisfies_b2b(q) or satisfies_b3(q)
        )

    @settings(max_examples=100, deadline=None)
    @given(words)
    def test_b1_subset_of_b2a_and_b3(self, q):
        """Definition 1 remark: B1 ⊆ B2a ∩ B3."""
        if satisfies_b1(q):
            assert satisfies_b2a(q)
            assert satisfies_b3(q)


class TestSuffixAlignedWitnesses:
    def test_rrx(self):
        witness = find_b2a("RRX", require_suffix=True)
        assert witness is not None
        assert witness.offset + 3 == len(witness.pumped)

    def test_uvuvwv(self):
        witness = find_b2b("UVUVWV", require_suffix=True)
        assert witness is not None
        assert len(witness.pumped) == witness.offset + 6

    def test_paper_examples_found(self):
        assert find_b2b("RXRY", require_suffix=True) is not None
        assert find_b2a("RRRRX", require_suffix=True) is not None
