"""Property tests for the Section 8 lemmas (constants machinery)."""

import random

from hypothesis import given, settings, strategies as st

from repro.classification.generalized import (
    satisfies_d1,
    satisfies_d2,
    satisfies_d3,
)
from repro.classification.conditions import (
    satisfies_c1,
    satisfies_c2,
    satisfies_c3,
)
from repro.db.facts import Fact
from repro.db.instance import DatabaseInstance
from repro.db.repairs import count_repairs, iter_repairs
from repro.db.evaluation import (
    generalized_query_satisfied,
    query_satisfied,
)
from repro.queries.generalized import GeneralizedPathQuery
from repro.solvers.brute_force import certain_answer_brute_force
from repro.words.word import Word
from repro.workloads.generators import random_instance

words = st.text(alphabet="RSX", min_size=1, max_size=6).map(Word)


class TestLemma30:
    """With at least one constant, D3 implies D2."""

    @settings(max_examples=150, deadline=None)
    @given(words)
    def test_d3_implies_d2_with_constant(self, w):
        q = GeneralizedPathQuery(w, {len(w): "c"})
        if satisfies_d3(q):
            assert satisfies_d2(q)


class TestLemma31:
    """D-conditions transfer to C-conditions of ext(q)."""

    @settings(max_examples=120, deadline=None)
    @given(words)
    def test_transfer(self, w):
        q = GeneralizedPathQuery(w, {len(w): "c"})
        ext_word = q.ext().word
        if satisfies_d1(q):
            assert satisfies_c1(ext_word)
        if satisfies_d2(q):
            assert satisfies_c2(ext_word)
        if satisfies_d3(q):
            assert satisfies_c3(ext_word)


class TestLemma25:
    """Variable-disjoint unions: certainty is the conjunction of parts."""

    def test_on_random_instances(self, rng):
        for _ in range(25):
            db = random_instance(rng, 4, rng.randint(3, 10), ("R", "S", "T"), 0.5)
            if count_repairs(db) > 2000:
                continue
            # Two variable-disjoint generalized path queries.
            q1 = GeneralizedPathQuery("RS")
            q2 = GeneralizedPathQuery("T")
            both = all(
                generalized_query_satisfied(q1, repair)
                and generalized_query_satisfied(q2, repair)
                for repair in iter_repairs(db)
            )
            part1 = certain_answer_brute_force(db, q1).answer
            part2 = certain_answer_brute_force(db, q2).answer
            assert both == (part1 and part2)


class TestLemma26:
    """Appending a fresh N(c, d) fact reduces [[q, c]] to the plain query q·N."""

    def test_reduction_equivalence(self, rng):
        for _ in range(30):
            db = random_instance(rng, 4, rng.randint(3, 10), ("R", "S"), 0.5)
            if count_repairs(db) > 2000:
                continue
            constant = rng.choice(sorted(db.adom()))
            q = GeneralizedPathQuery("RS", {2: constant})
            direct = certain_answer_brute_force(db, q).answer
            extended = db.with_facts([Fact("N", constant, "_sink")])
            reduced = certain_answer_brute_force(extended, "RSN").answer
            assert direct == reduced


class TestLemma21:
    """If q starts with a constant, CERTAINTY(q) is in FO -- checked by
    agreement between the segment-based FO solver and brute force."""

    def test_rooted_queries(self, rng):
        from repro.solvers.generalized_solver import certain_answer_generalized

        for _ in range(30):
            db = random_instance(rng, 4, rng.randint(3, 10), ("R", "S"), 0.5)
            if count_repairs(db) > 2000:
                continue
            root = rng.choice(sorted(db.adom()))
            q = GeneralizedPathQuery("RS", {0: root})
            expected = certain_answer_brute_force(db, q).answer
            assert certain_answer_generalized(db, q).answer == expected
