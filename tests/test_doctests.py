"""Run the doctest examples embedded in the public API docstrings."""

import doctest
import importlib

import pytest

MODULE_NAMES = [
    "repro",
    "repro.automata.query_nfa",
    "repro.classification.conditions",
    "repro.classification.classifier",
    "repro.classification.regex_conditions",
    "repro.db.compact",
    "repro.db.delta",
    "repro.db.instance",
    "repro.db.interner",
    "repro.engine",
    "repro.engine.engine",
    "repro.engine.plan",
    "repro.experiments.harness",
    "repro.fo.evaluate",
    "repro.fo.rewriting",
    "repro.queries.generalized",
    "repro.queries.path_query",
    "repro.scenarios.matrix",
    "repro.scenarios.oracle",
    "repro.serving.faults",
    "repro.serving.journal",
    "repro.serving.replication",
    "repro.serving.server",
    "repro.serving.shard",
    "repro.serving.supervision",
    "repro.serving.transport",
    "repro.solvers.state_cache",
    "repro.solvers.answers",
    "repro.solvers.certainty",
    "repro.solvers.fixpoint",
    "repro.solvers.generalized_solver",
    "repro.solvers.nl_solver",
    "repro.solvers.sat",
    "repro.solvers.sat_encoding",
    "repro.words.rewind",
    "repro.words.word",
]


@pytest.mark.parametrize("name", MODULE_NAMES)
def test_doctests(name):
    # importlib.import_module returns the module itself even when a parent
    # package re-exports a same-named function (e.g. automata.query_nfa).
    module = importlib.import_module(name)
    result = doctest.testmod(module, verbose=False)
    assert result.failed == 0
    # Modules listed here are expected to actually carry examples.
    assert result.attempted > 0, "no doctests in {}".format(name)
