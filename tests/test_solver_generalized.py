"""Tests for the Section 8 generalized-query solver (Lemmas 25-29)."""

import pytest

from repro.db.instance import DatabaseInstance
from repro.db.repairs import count_repairs
from repro.queries.generalized import GeneralizedPathQuery
from repro.solvers.brute_force import certain_answer_brute_force
from repro.solvers.generalized_solver import (
    certain_answer_generalized,
    rooted_certainty_to,
)
from repro.workloads.generators import random_instance


class TestRootedCertaintyTo:
    def test_pinned_endpoint(self):
        db = DatabaseInstance.from_triples([("R", "a", "b"), ("S", "b", "t")])
        assert rooted_certainty_to(db, "RS", "a", "t")
        assert not rooted_certainty_to(db, "RS", "a", "u")

    def test_block_with_escape(self):
        db = DatabaseInstance.from_triples(
            [("R", "a", "b"), ("R", "a", "c"), ("S", "b", "t"), ("S", "c", "t")]
        )
        assert rooted_certainty_to(db, "RS", "a", "t")

    def test_block_without_escape(self):
        db = DatabaseInstance.from_triples(
            [("R", "a", "b"), ("R", "a", "c"), ("S", "b", "t")]
        )
        assert not rooted_certainty_to(db, "RS", "a", "t")

    def test_single_fact_block_equality(self):
        """Base case: every repair contains R(a, c) iff the block is {R(a,c)}."""
        db = DatabaseInstance.from_triples([("R", "a", "c")])
        assert rooted_certainty_to(db, "R", "a", "c")
        db2 = DatabaseInstance.from_triples([("R", "a", "c"), ("R", "a", "d")])
        assert not rooted_certainty_to(db2, "R", "a", "c")


class TestGeneralizedSolver:
    def test_constant_free_delegates(self):
        q = GeneralizedPathQuery("RRX")
        db = DatabaseInstance.from_triples(
            [("R", 0, 1), ("R", 1, 2), ("X", 2, 3)]
        )
        assert certain_answer_generalized(db, q).answer

    def test_rooted_query(self):
        q = GeneralizedPathQuery("RR", {0: "a"})
        db = DatabaseInstance.from_triples([("R", "a", "b"), ("R", "b", "c")])
        assert certain_answer_generalized(db, q).answer
        db2 = db.with_facts([])
        q_fail = GeneralizedPathQuery("RRR", {0: "a"})
        assert not certain_answer_generalized(db2, q_fail).answer

    def test_example8_shape(self):
        """q = R(x,y), S(y,0), T(0,1), R(1,w)."""
        q = GeneralizedPathQuery(["R", "S", "T", "R"], {2: 0, 3: 1})
        db = DatabaseInstance.from_triples(
            [("R", "a", "b"), ("S", "b", 0), ("T", 0, 1), ("R", 1, "z")]
        )
        result = certain_answer_generalized(db, q)
        assert result.answer
        # Remove the T fact: the middle segment fails.
        db2 = db.without_facts([f for f in db.facts if f.relation == "T"])
        assert not certain_answer_generalized(db2, q).answer

    def test_failed_segment_reported(self):
        q = GeneralizedPathQuery(["R", "T"], {1: "m"})
        db = DatabaseInstance.from_triples([("R", "a", "m")])
        result = certain_answer_generalized(db, q)
        assert not result.answer
        assert "failed_segment" in result.details

    @pytest.mark.parametrize("word", ["RS", "RR", "RRX", "RXRY", "RSTR"])
    def test_differential(self, word, rng):
        """Random node labelings vs brute force."""
        for _ in range(40):
            size = len(word) + 1
            nodes = [None] * size
            used = set()
            for position in range(size):
                if rng.random() < 0.35:
                    constant = rng.randrange(4)
                    if constant not in used:
                        nodes[position] = constant
                        used.add(constant)
            q = GeneralizedPathQuery(word, nodes=nodes)
            db = random_instance(rng, 4, rng.randint(2, 9), sorted(set(word)), 0.5)
            if count_repairs(db) > 3000:
                continue
            expected = certain_answer_brute_force(db, q).answer
            assert certain_answer_generalized(db, q).answer == expected

    def test_ext_sink_constant_fresh(self):
        """The ext reduction's sink must not collide with adom constants."""
        q = GeneralizedPathQuery("R", {1: "_ext_sink"})
        db = DatabaseInstance.from_triples([("R", "a", "_ext_sink")])
        result = certain_answer_generalized(db, q)
        assert result.answer
