"""Engine stats accounting under streaming batches and delta streams.

The satellite claim: the delta counters (``delta_solves`` =
``incremental_hits`` + ``full_resolves``) and the batch counters stay
consistent when multiprocess ``solve_batch_iter`` runs interleave with
``solve_delta`` streams on the same engine -- pool workers must not
corrupt (or double-count into) the parent's counters.
"""

import pytest

from repro.db.delta import Delta
from repro.db.facts import Fact
from repro.engine import CertaintyEngine
from repro.workloads.generators import chain_instance

MIXED = ["RXRX", "RRX", "RXRYRY", "ARRX"]


def _pairs():
    return [
        (chain_instance(query, repetitions=r, conflict_every=3), query)
        for query in MIXED
        for r in (2, 3)
    ]


def _assert_delta_invariant(engine):
    stats = engine.stats
    assert stats.delta_solves == stats.incremental_hits + stats.full_resolves


class TestBatchIterAccounting:
    def test_parallel_batch_counters(self):
        engine = CertaintyEngine()
        pairs = _pairs()
        results = sorted(engine.solve_batch_iter(pairs, workers=2))
        assert [i for i, _r in results] == list(range(len(pairs)))
        assert engine.stats.solves == len(pairs)
        assert engine.stats.batches == 1
        assert engine.stats.parallel_batches == 1
        assert sum(engine.stats.method_counts.values()) == len(pairs)
        # A pure batch performs no delta work at all.
        assert engine.stats.delta_solves == 0
        assert engine.stats.incremental_hits == 0
        assert engine.stats.full_resolves == 0

    def test_sequential_iter_matches_parallel_counts(self):
        pairs = _pairs()
        sequential = CertaintyEngine()
        parallel = CertaintyEngine()
        seq_results = sorted(sequential.solve_batch_iter(pairs))
        par_results = sorted(parallel.solve_batch_iter(pairs, workers=2))
        assert [r.answer for _i, r in seq_results] == [
            r.answer for _i, r in par_results
        ]
        assert sequential.stats.solves == parallel.stats.solves
        assert sequential.stats.parallel_batches == 0
        assert parallel.stats.parallel_batches == 1


class TestDeltaAccountingUnderBatches:
    def test_delta_counters_survive_interleaved_parallel_batches(self):
        engine = CertaintyEngine()
        db = chain_instance("RRX", repetitions=4, conflict_every=3)

        # Cold sight: one full resolve.
        engine.solve_delta(db, Delta(), "RRX")
        assert engine.stats.full_resolves == 1
        _assert_delta_invariant(engine)

        # A workers=2 batch in between must leave delta counters alone.
        list(engine.solve_batch_iter(_pairs(), workers=2))
        assert engine.stats.delta_solves == 1
        assert engine.stats.incremental_hits == 0
        _assert_delta_invariant(engine)

        # Warm stream: every step an incremental hit, invariant holds.
        n_nodes = 4 * 3
        for step in range(4):
            branch = Fact("R", step, n_nodes + 50 + step)
            engine.solve_delta(db, Delta.inserting(branch), "RRX")
            db = Delta.inserting(branch).apply_to(db).commit()
            _assert_delta_invariant(engine)
        assert engine.stats.delta_solves == 5
        assert engine.stats.incremental_hits == 4
        assert engine.stats.full_resolves == 1

    def test_conp_fallback_counts_as_full_resolve(self):
        engine = CertaintyEngine()
        # A consistent ARRX chain: certainty holds, so the incremental
        # pre-filter cannot dismiss it and every delta decision re-solves
        # via SAT.  First sight builds the CNF context (a full resolve);
        # the warm step re-solves through the cached assumption-keyed
        # context and counts as a SAT-incremental hit, keeping the
        # invariant intact.
        db = chain_instance("ARRX", repetitions=2)
        cold = engine.solve_delta(db, Delta(), "ARRX")
        assert cold.answer is True
        assert cold.method == "sat-incremental"
        assert cold.details["incremental"] is False
        assert engine.stats.full_resolves == 1
        result = engine.solve_delta(db, Delta(), "ARRX")
        assert result.answer is True
        assert result.method == "sat-incremental"
        assert result.details["incremental"] is True
        assert engine.stats.delta_solves == 2
        assert engine.stats.full_resolves == 1
        assert engine.stats.sat_incremental_hits == 1
        _assert_delta_invariant(engine)

    def test_forced_method_delta_counts_as_full_resolve(self):
        engine = CertaintyEngine()
        db = chain_instance("RRX", repetitions=3)
        result = engine.solve_delta(db, Delta(), "RRX", method="fixpoint")
        assert result.details["incremental"] is False
        assert engine.stats.full_resolves == 1
        _assert_delta_invariant(engine)
