"""Tests for Boolean conjunctive queries and homomorphisms."""

from repro.queries.atoms import Atom, Variable
from repro.queries.conjunctive import ConjunctiveQuery

X, Y, Z = Variable("x"), Variable("y"), Variable("z")


class TestStructure:
    def test_variables(self):
        q = ConjunctiveQuery([Atom("R", X, Y), Atom("S", Y, "c")])
        assert q.variables() == frozenset({X, Y})
        assert q.constants() == frozenset({"c"})

    def test_self_join_detection(self):
        assert ConjunctiveQuery([Atom("R", X, Y), Atom("R", Y, X)]).has_self_join()
        assert ConjunctiveQuery([Atom("R", X, Y), Atom("S", Y, X)]).is_self_join_free()

    def test_relation_names(self):
        q = ConjunctiveQuery([Atom("R", X, Y), Atom("S", Y, X)])
        assert q.relation_names() == frozenset({"R", "S"})

    def test_set_semantics(self):
        q1 = ConjunctiveQuery([Atom("R", X, Y), Atom("R", X, Y)])
        assert len(q1) == 1


class TestHomomorphisms:
    def test_simple_satisfaction(self):
        q = ConjunctiveQuery([Atom("R", X, Y)])
        assert q.satisfied_by([("R", 1, 2)])
        assert not q.satisfied_by([("S", 1, 2)])

    def test_join_satisfaction(self):
        q = ConjunctiveQuery([Atom("R", X, Y), Atom("S", Y, Z)])
        assert q.satisfied_by([("R", 1, 2), ("S", 2, 3)])
        assert not q.satisfied_by([("R", 1, 2), ("S", 3, 4)])

    def test_constant_must_match(self):
        q = ConjunctiveQuery([Atom("R", "a", Y)])
        assert q.satisfied_by([("R", "a", "b")])
        assert not q.satisfied_by([("R", "b", "b")])

    def test_non_injective_valuation_allowed(self):
        # x and y may map to the same constant.
        q = ConjunctiveQuery([Atom("R", X, Y)])
        assert q.satisfied_by([("R", 1, 1)])

    def test_self_join_single_fact(self):
        """Example 1's key observation: one fact can serve two atoms."""
        q = ConjunctiveQuery([Atom("R", X, Y), Atom("R", Y, X)])
        assert q.satisfied_by([("R", "a", "a")])
        assert q.satisfied_by([("R", "a", "b"), ("R", "b", "a")])
        assert not q.satisfied_by([("R", "a", "b")])

    def test_enumeration_count(self):
        q = ConjunctiveQuery([Atom("R", X, Y)])
        homs = list(q.homomorphisms_into([("R", 1, 2), ("R", 3, 4)]))
        assert len(homs) == 2

    def test_homomorphism_to_query(self):
        p = ConjunctiveQuery([Atom("R", X, Y)])
        q = ConjunctiveQuery([Atom("R", Variable("a"), Variable("b")),
                              Atom("S", Variable("b"), Variable("c"))])
        assert p.homomorphism_to(q) is not None
        assert q.homomorphism_to(p) is None


class TestComponents:
    def test_connected_components(self):
        q = ConjunctiveQuery(
            [Atom("R", X, Y), Atom("S", Y, Z), Atom("T", Variable("u"), Variable("v"))]
        )
        components = q.connected_components()
        sizes = sorted(len(c) for c in components)
        assert sizes == [1, 2]

    def test_single_component(self):
        q = ConjunctiveQuery([Atom("R", X, Y), Atom("S", Y, Z)])
        assert len(q.connected_components()) == 1

    def test_constant_only_atoms_are_singletons(self):
        q = ConjunctiveQuery([Atom("R", "a", "b"), Atom("S", X, Y)])
        assert len(q.connected_components()) == 2
