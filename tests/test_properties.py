"""Hypothesis property tests tying the whole stack together.

These are the library's strongest correctness guarantees: random queries
and random inconsistent instances, with every polynomial algorithm checked
against brute-force repair enumeration, and the paper's structural lemmas
asserted along the way.
"""

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.classification.classifier import ComplexityClass, classify
from repro.db.evaluation import path_query_satisfied
from repro.db.repairs import count_repairs, iter_repairs
from repro.engine import CertaintyEngine
from repro.queries.generalized import GeneralizedPathQuery
from repro.scenarios.oracle import reference_answer
from repro.solvers.brute_force import certain_answer_brute_force
from repro.solvers.certainty import certain_answer
from repro.solvers.fixpoint import (
    build_minimal_repair,
    certain_answer_fixpoint,
    fixpoint_relation,
)
from repro.solvers.sat_encoding import certain_answer_sat
from repro.words.word import Word
from repro.workloads.generators import firehose_stream, random_instance


words = st.text(alphabet="RX", min_size=1, max_size=5).map(Word)


def instances(alphabet=("R", "X"), max_facts=10):
    def build(seed):
        rng = random.Random(seed)
        return random_instance(
            rng, rng.randint(2, 5), rng.randint(1, max_facts), alphabet, 0.5
        )

    return st.integers(min_value=0, max_value=10**9).map(build)


common_settings = settings(
    max_examples=120,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class TestEndToEnd:
    @common_settings
    @given(words, instances())
    def test_auto_solver_matches_brute_force(self, q, db):
        if count_repairs(db) > 2000:
            return
        expected = certain_answer_brute_force(db, q).answer
        assert certain_answer(db, q).answer == expected

    @common_settings
    @given(words, instances())
    def test_sat_matches_brute_force(self, q, db):
        if count_repairs(db) > 2000:
            return
        expected = certain_answer_brute_force(db, q).answer
        assert certain_answer_sat(db, q).answer == expected

    @common_settings
    @given(words, instances())
    def test_fixpoint_complete_for_c3(self, q, db):
        if count_repairs(db) > 2000:
            return
        if classify(q).complexity is ComplexityClass.CONP_COMPLETE:
            return
        expected = certain_answer_brute_force(db, q).answer
        assert certain_answer_fixpoint(db, q).answer == expected


class TestCertificates:
    @common_settings
    @given(words, instances())
    def test_no_answers_carry_falsifying_repairs(self, q, db):
        if count_repairs(db) > 2000:
            return
        result = certain_answer_fixpoint(db, q, require_c3=False)
        if not result.answer:
            assert result.falsifying_repair.is_repair_of(db)
            assert not path_query_satisfied(q, result.falsifying_repair)


class TestFixpointSemantics:
    @common_settings
    @given(words, instances())
    def test_lemma10_exact_characterization(self, q, db):
        """(c, u) ∈ N iff every repair has a path from c accepted by
        S-NFA(q, u) -- checked by repair enumeration on small instances."""
        if count_repairs(db) > 64:
            return
        from repro.automata.query_nfa import s_nfa
        from repro.automata.runs import good_product_states

        n = fixpoint_relation(db, q)
        repairs = list(iter_repairs(db))
        automaton = s_nfa(q, 0)
        goods = [good_product_states(repair, automaton) for repair in repairs]
        for constant in sorted(db.adom(), key=str):
            for prefix_length in range(len(q) + 1):
                if prefix_length == len(q):
                    # Initialization Step: (c, q) holds vacuously for every
                    # c in adom(db) (the empty path), even when c does not
                    # occur in some repair's active domain.
                    assert (constant, prefix_length) in n
                    continue
                expected = all(
                    (constant, prefix_length) in good for good in goods
                )
                assert ((constant, prefix_length) in n) == expected

    @common_settings
    @given(words, instances())
    def test_minimal_repair_minimizes_start(self, q, db):
        """Lemma 6 via Lemma 9: start(q, r*) ⊆ start(q, r) for all r."""
        if count_repairs(db) > 64:
            return
        from repro.automata.runs import accepted_start_constants

        r_star = build_minimal_repair(db, q)
        minimal = accepted_start_constants(r_star, q)
        for repair in iter_repairs(db):
            assert minimal <= accepted_start_constants(repair, q)


class TestDeltaChains:
    """Random insert/delete chains through the incremental engine.

    One query per route of the tetrachotomy (FO, NL-complete,
    PTIME-complete, coNP-complete): at every step of a seeded
    :func:`firehose_stream` chain, ``solve_delta`` must agree with a
    cold full re-solve on the committed instance *and* with the
    independent scenario oracle.
    """

    chain_settings = settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[
            HealthCheck.too_slow,
            HealthCheck.data_too_large,
        ],
    )

    @chain_settings
    @given(
        st.integers(min_value=0, max_value=10**9),
        st.sampled_from(("RXRX", "RRX", "RXRYRY", "ARRX")),
    )
    def test_chain_matches_full_resolve_and_oracle(self, seed, q):
        rng = random.Random(seed)
        db = random_instance(
            rng,
            rng.randint(3, 5),
            rng.randint(4, 10),
            ("A", "R", "X", "Y"),
            0.5,
        )
        deltas = firehose_stream(
            rng, db, rng.randint(1, 4), max_edits=2
        )
        engine = CertaintyEngine()
        # Prime the maintained state so the chain exercises the
        # incremental path rather than a sequence of cold solves.
        engine.solve(db, q)
        for delta in deltas:
            chained = engine.solve_delta(db, delta, q).answer
            db = delta.apply_to(db).commit()
            assert chained == CertaintyEngine().solve(db, q).answer
            assert chained == reference_answer(db, q)

    @chain_settings
    @given(
        st.integers(min_value=0, max_value=10**9),
        st.sampled_from(
            (
                GeneralizedPathQuery("RR", {0: 0}),
                GeneralizedPathQuery("RX", {2: 1}),
                GeneralizedPathQuery("ARRX", {4: 1}),
            )
        ),
    )
    def test_generalized_chain_matches_full_resolve_and_oracle(
        self, seed, q
    ):
        """Section 8 queries ride the same chain contract: the
        maintained :class:`GeneralizedState` must agree with a cold
        generalized solve and with the oracle at every step."""
        rng = random.Random(seed)
        db = random_instance(
            rng,
            rng.randint(3, 5),
            rng.randint(4, 10),
            ("A", "R", "X", "Y"),
            0.5,
        )
        deltas = firehose_stream(
            rng, db, rng.randint(1, 4), max_edits=2
        )
        engine = CertaintyEngine()
        engine.solve(db, q)
        for delta in deltas:
            chained = engine.solve_delta(db, delta, q).answer
            db = delta.apply_to(db).commit()
            assert chained == CertaintyEngine().solve(db, q).answer
            assert chained == reference_answer(db, q)


class TestMonotonicity:
    @common_settings
    @given(words, instances())
    def test_certainty_antitone_in_conflicts(self, q, db):
        """Resolving a conflict (deleting a fact from a conflicting block)
        can only help certainty: if db is certain, so is any instance
        obtained by shrinking one conflicting block."""
        if count_repairs(db) > 2000:
            return
        if not certain_answer(db, q).answer:
            return
        for block in db.conflicting_blocks():
            shrunk = db.without_facts([block.facts[0]])
            assert certain_answer(shrunk, q).answer
            break
