"""Contract suite for the durable journal tier.

Every :class:`~repro.serving.journal.JournalStore` backend must agree on
the seam's semantics -- append, fold, replay ordering, idempotent
redelivery, concurrent shard writers -- so the suite is parametrized
over the memory, sqlite, kv (both backends), and replicated stores.
Sqlite-only tests cover what makes that backend the durable one:
reopening a path restores the state, compaction bounds the log without
changing it, and torn-tail recovery truncates a damaged log at the
first bad record while counting the loss.
"""

import sqlite3
import threading

import pytest

from repro.db.delta import Delta
from repro.db.facts import Fact
from repro.db.instance import DatabaseInstance
from repro.serving.journal import (
    SPEC_GRAMMAR,
    JournalStore,
    MemoryJournalStore,
    SqliteJournalStore,
    make_journal_store,
)
from repro.serving.replication import (
    FileKV,
    KVJournalStore,
    MemoryKV,
    ReplicatedJournalStore,
)


def _db(*triples):
    return DatabaseInstance.from_triples(list(triples))


def _delta(inserts=(), removes=()):
    return Delta(
        removes=tuple(Fact(*t) for t in removes),
        inserts=tuple(Fact(*t) for t in inserts),
    )


@pytest.fixture(
    params=["memory", "sqlite", "kv-memory", "kv-file", "replicated"]
)
def store(request, tmp_path):
    if request.param == "memory":
        yield MemoryJournalStore()
    elif request.param == "sqlite":
        s = SqliteJournalStore(tmp_path / "journal.db")
        yield s
        s.close()
    elif request.param == "kv-memory":
        yield KVJournalStore(MemoryKV())
    elif request.param == "kv-file":
        s = KVJournalStore(FileKV(tmp_path / "kv"))
        yield s
        s.close()
    else:
        # Mixed topology: durable primary, two in-memory read replicas.
        s = ReplicatedJournalStore(
            "sqlite:{}".format(tmp_path / "primary.db"),
            ("memory", "memory"),
        )
        yield s
        s.close()


class TestJournalContract:
    def test_register_then_get(self, store):
        db = _db(("R", 0, 1))
        store.register(0, "toy", db, seq=1)
        assert store.get(0, "toy") == db
        assert store.get(0, "missing") is None
        assert store.get(1, "toy") is None  # shards are disjoint

    def test_residents_returns_folded_copies(self, store):
        store.register(0, "a", _db(("R", 0, 1)), seq=1)
        store.register(0, "b", _db(("S", 0, 1)), seq=2)
        residents = store.residents(0)
        assert sorted(residents) == ["a", "b"]
        residents["c"] = None  # a copy: mutating it must not leak back
        assert sorted(store.residents(0)) == ["a", "b"]

    def test_delta_folds_against_current_snapshot(self, store):
        store.register(0, "toy", _db(("R", 0, 1), ("R", 1, 2)), seq=1)
        store.delta(0, "toy", _delta(inserts=[("X", 2, 3)]), seq=2)
        store.delta(0, "toy", _delta(removes=[("R", 1, 2)]), seq=3)
        expected = _db(("R", 0, 1), ("X", 2, 3))
        assert store.get(0, "toy") == expected

    def test_replay_ordering_interleaved_names(self, store):
        # Ops against different names interleave in one shard log; each
        # name folds its own subsequence, in order.
        store.register(0, "a", _db(("R", 0, 1)), seq=1)
        store.register(0, "b", _db(("S", 0, 1)), seq=2)
        store.delta(0, "a", _delta(inserts=[("R", 1, 2)]), seq=3)
        store.delta(0, "b", _delta(removes=[("S", 0, 1)]), seq=4)
        store.delta(0, "a", _delta(removes=[("R", 0, 1)]), seq=5)
        assert store.get(0, "a") == _db(("R", 1, 2))
        assert store.get(0, "b") == _db()

    def test_delta_on_unknown_name_raises(self, store):
        with pytest.raises(KeyError):
            store.delta(0, "ghost", _delta(inserts=[("R", 0, 1)]), seq=1)

    def test_last_seq_high_water(self, store):
        assert store.last_seq(0) == 0
        store.register(0, "toy", _db(("R", 0, 1)), seq=5)
        assert store.last_seq(0) == 5
        assert store.last_seq(1) == 0  # per shard

    def test_redelivered_seq_is_ignored(self, store):
        store.register(0, "toy", _db(("R", 0, 1)), seq=1)
        store.delta(0, "toy", _delta(inserts=[("X", 1, 2)]), seq=2)
        before = store.get(0, "toy")
        # A transport retry redelivers already-journaled writes.
        store.register(0, "toy", _db(("R", 9, 9)), seq=1)
        store.delta(0, "toy", _delta(inserts=[("X", 1, 2)]), seq=2)
        assert store.get(0, "toy") == before
        assert store.last_seq(0) == 2

    def test_unstamped_writes_always_apply(self, store):
        store.register(0, "toy", _db(("R", 0, 1)), seq=3)
        store.register(0, "toy", _db(("R", 9, 9)))  # seq=0: not protected
        assert store.get(0, "toy") == _db(("R", 9, 9))
        assert store.last_seq(0) == 3

    def test_reregistration_supersedes_history(self, store):
        store.register(0, "toy", _db(("R", 0, 1)), seq=1)
        store.delta(0, "toy", _delta(inserts=[("X", 1, 2)]), seq=2)
        store.register(0, "toy", _db(("S", 0, 1)), seq=3)
        assert store.get(0, "toy") == _db(("S", 0, 1))

    def test_placements_span_shards(self, store):
        store.register(2, "orders", _db(("R", 0, 1)), seq=1)
        store.register(0, "users", _db(("S", 0, 1)), seq=1)
        assert store.placements() == {"orders": 2, "users": 0}

    def test_shard_view_binds_the_shard(self, store):
        journal = store.shard(3)
        assert journal.kind == store.kind
        journal.register("toy", _db(("R", 0, 1)), seq=1)
        journal.delta("toy", _delta(inserts=[("X", 1, 2)]), seq=2)
        assert journal.get("toy") == _db(("R", 0, 1), ("X", 1, 2))
        assert journal.last_seq() == 2
        assert sorted(journal.residents()) == ["toy"]
        assert store.get(3, "toy") == journal.get("toy")
        assert store.last_seq(0) == 0

    def test_concurrent_shard_writers(self, store):
        # One writer thread per shard, each appending its own op stream
        # -- the real concurrency shape: ShardWorker threads share the
        # store but never share a shard.
        shards, writes = 4, 25
        errors = []

        def writer(shard_id):
            try:
                journal = store.shard(shard_id)
                journal.register(
                    "res-{}".format(shard_id), _db(("R", 0, 1)), seq=1
                )
                for i in range(writes):
                    journal.delta(
                        "res-{}".format(shard_id),
                        _delta(inserts=[("X", i, i + 1)]),
                        seq=2 + i,
                    )
            except BaseException as error:  # noqa: BLE001 - reported
                errors.append(error)

        threads = [
            threading.Thread(target=writer, args=(s,)) for s in range(shards)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        for shard_id in range(shards):
            db = store.get(shard_id, "res-{}".format(shard_id))
            assert len(db.facts) == 1 + writes
            assert store.last_seq(shard_id) == 1 + writes

    def test_health_is_plain_data(self, store):
        store.register(0, "toy", _db(("R", 0, 1)), seq=1)
        health = store.health()
        assert health["store"] == store.kind
        assert health["residents"] == 1
        assert health["ops"] >= 1


class TestSqliteDurability:
    def test_reopen_restores_everything(self, tmp_path):
        path = tmp_path / "journal.db"
        store = SqliteJournalStore(path)
        store.register(0, "a", _db(("R", 0, 1), ("R", 1, 2)), seq=1)
        store.delta(0, "a", _delta(inserts=[("X", 2, 3)]), seq=2)
        store.register(1, "b", _db(("S", 0, 1)), seq=1)
        expected_a = store.get(0, "a")
        store.close()

        reopened = SqliteJournalStore(path)
        try:
            assert reopened.get(0, "a") == expected_a
            assert reopened.get(1, "b") == _db(("S", 0, 1))
            assert reopened.last_seq(0) == 2
            assert reopened.last_seq(1) == 1
            assert reopened.placements() == {"a": 0, "b": 1}
            # Redelivery protection survives the reopen too.
            reopened.delta(0, "a", _delta(removes=[("X", 2, 3)]), seq=2)
            assert reopened.get(0, "a") == expected_a
        finally:
            reopened.close()

    def test_compaction_bounds_the_log(self, tmp_path):
        store = SqliteJournalStore(tmp_path / "journal.db", compact_every=4)
        store.register(0, "toy", _db(("R", 0, 1)), seq=1)
        for i in range(10):
            store.delta(0, "toy", _delta(inserts=[("X", i, i + 1)]), seq=2 + i)
        health = store.health()
        assert health["compactions"] == 2  # after deltas 4 and 8
        # 10 deltas, but the log holds one snapshot + the post-compaction
        # tail -- never compact_every rows or more for one resident.
        assert health["log_rows"] < 4 + 1
        expected = store.get(0, "toy")
        assert len(expected.facts) == 11
        store.close()
        reopened = SqliteJournalStore(tmp_path / "journal.db")
        try:
            assert reopened.get(0, "toy") == expected
            assert reopened.last_seq(0) == 11
        finally:
            reopened.close()

    def test_manual_compact(self, tmp_path):
        store = SqliteJournalStore(tmp_path / "journal.db", compact_every=100)
        store.register(0, "a", _db(("R", 0, 1)), seq=1)
        store.delta(0, "a", _delta(inserts=[("X", 1, 2)]), seq=2)
        store.register(1, "b", _db(("S", 0, 1)), seq=1)
        assert store.compact() == 1  # only "a" has pending delta rows
        assert store.compact() == 0  # idempotent
        assert store.health()["log_rows"] == 2  # one snapshot row each
        assert store.get(0, "a") == _db(("R", 0, 1), ("X", 1, 2))
        store.close()

    def test_compact_every_validated(self, tmp_path):
        with pytest.raises(ValueError):
            SqliteJournalStore(tmp_path / "journal.db", compact_every=0)


class TestTornTailRecovery:
    """Damaged sqlite logs fold their intact prefix and count the loss."""

    def _seed(self, path, residents=5):
        store = SqliteJournalStore(path)
        originals = {}
        for i in range(residents):
            name = "res-{}".format(i)
            db = _db(("R", i, i + 1), ("S", i, i + 2))
            store.register(0, name, db, seq=i + 1)
            originals[name] = db
        store.close()
        return originals

    def test_corrupt_record_drops_exact_tail(self, tmp_path):
        path = tmp_path / "journal.db"
        originals = self._seed(path, residents=5)
        conn = sqlite3.connect(str(path))
        # Smash the 3rd record's payload: frame intact, crc mismatched.
        conn.execute(
            "UPDATE journal SET payload = X'00000000DEADBEEF' WHERE id ="
            " (SELECT id FROM journal ORDER BY id LIMIT 1 OFFSET 2)"
        )
        conn.commit()
        conn.close()
        reopened = SqliteJournalStore(path)
        try:
            # Records 3, 4, 5 are gone -- the count is exact.
            assert reopened.health()["truncated_ops"] == 3
            assert sorted(reopened.residents(0)) == ["res-0", "res-1"]
            for name in ("res-0", "res-1"):
                assert reopened.get(0, name) == originals[name]
            assert reopened.last_seq(0) == 2
        finally:
            reopened.close()

    def test_single_bit_flip_detected(self, tmp_path):
        path = tmp_path / "journal.db"
        originals = self._seed(path, residents=4)
        conn = sqlite3.connect(str(path))
        (row_id, payload) = conn.execute(
            "SELECT id, payload FROM journal ORDER BY id LIMIT 1 OFFSET 1"
        ).fetchone()
        flipped = bytearray(payload)
        flipped[-1] ^= 0x01
        conn.execute(
            "UPDATE journal SET payload = ? WHERE id = ?",
            (bytes(flipped), row_id),
        )
        conn.commit()
        conn.close()
        reopened = SqliteJournalStore(path)
        try:
            assert reopened.health()["truncated_ops"] == 3
            assert sorted(reopened.residents(0)) == ["res-0"]
            assert reopened.get(0, "res-0") == originals["res-0"]
            assert reopened.last_seq(0) == 1
        finally:
            reopened.close()

    @pytest.mark.parametrize("fraction", [2, 3, 4])
    def test_truncated_file_recovers_intact_prefix(self, tmp_path, fraction):
        # A crash mid-append can cut the file at any byte.  Sqlite loses
        # whole pages, so the recoverable prefix may be empty -- the
        # contract is that reopen *survives*, keeps only intact
        # records, counts at least the floor of the loss, and takes
        # appends cleanly afterwards.
        path = tmp_path / "journal.db"
        originals = self._seed(path, residents=6)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) * (fraction - 1) // fraction])
        reopened = SqliteJournalStore(path)
        try:
            assert reopened.health()["truncated_ops"] >= 1
            for name, db in reopened.residents(0).items():
                assert db == originals[name]
            assert reopened.last_seq(0) <= 6
            # The rebuilt log must take appends cleanly afterwards.
            seq = reopened.last_seq(0) + 1
            reopened.register(0, "after", _db(("T", 0, 1)), seq=seq)
            assert reopened.get(0, "after") == _db(("T", 0, 1))
            assert reopened.last_seq(0) == seq
        finally:
            reopened.close()

    def test_tear_hook_then_reopen(self, tmp_path):
        path = tmp_path / "journal.db"
        store = SqliteJournalStore(path)
        store.register(0, "toy", _db(("R", 0, 1)), seq=1)
        store.tear(0)
        store.close()
        reopened = SqliteJournalStore(path)
        try:
            assert reopened.health()["truncated_ops"] == 1
            assert reopened.get(0, "toy") == _db(("R", 0, 1))
            assert reopened.last_seq(0) == 1
        finally:
            reopened.close()

    def test_unreadable_file_recovers_empty_but_usable(self, tmp_path):
        path = tmp_path / "garbage.db"
        path.write_bytes(b"this is not a sqlite database at all")
        store = SqliteJournalStore(path)
        try:
            assert store.health()["truncated_ops"] >= 1
            assert store.residents(0) == {}
            store.register(0, "toy", _db(("R", 0, 1)), seq=1)
            assert store.get(0, "toy") == _db(("R", 0, 1))
        finally:
            store.close()


class TestMakeJournalStore:
    def test_none_passthrough(self):
        assert make_journal_store(None) is None

    def test_instance_passthrough(self):
        store = MemoryJournalStore()
        assert make_journal_store(store) is store

    def test_memory_by_name(self):
        store = make_journal_store("memory")
        assert isinstance(store, MemoryJournalStore)

    def test_sqlite_by_spec(self, tmp_path):
        store = make_journal_store("sqlite:{}".format(tmp_path / "j.db"))
        assert isinstance(store, SqliteJournalStore)
        assert isinstance(store, JournalStore)
        store.close()

    def test_kv_by_spec(self, tmp_path):
        memory = make_journal_store("kv:memory")
        assert isinstance(memory, KVJournalStore)
        assert memory.backend.kind == "memory"
        filed = make_journal_store("kv:{}".format(tmp_path / "kvdir"))
        assert filed.backend.kind == "file"
        filed.close()

    def test_replicated_by_spec(self, tmp_path):
        store = make_journal_store(
            "replicated:sqlite:{};memory,memory".format(tmp_path / "p.db")
        )
        assert isinstance(store, ReplicatedJournalStore)
        assert store.primary.kind == "sqlite"
        assert [f.kind for f in store.followers] == ["memory", "memory"]
        store.close()

    def test_bad_specs_rejected(self):
        with pytest.raises(ValueError) as excinfo:
            make_journal_store("parchment")
        # The rejection names the full supported grammar.
        assert SPEC_GRAMMAR in str(excinfo.value)
        with pytest.raises(ValueError):
            make_journal_store("sqlite:")
        with pytest.raises(ValueError):
            make_journal_store("kv:")
        with pytest.raises(ValueError):
            make_journal_store("replicated:memory")  # no follower
        with pytest.raises(ValueError):
            make_journal_store("replicated:;memory")  # no primary
        with pytest.raises(TypeError):
            make_journal_store(42)
