"""Tests for automata over database instances (Definitions 6, 7; Lemmas 6, 8)."""

import random

from repro.automata.query_nfa import query_nfa
from repro.automata.runs import (
    accepted_start_constants,
    accepts_path_from,
    states_set,
)
from repro.db.facts import Fact
from repro.db.instance import DatabaseInstance
from repro.db.repairs import iter_repairs
from repro.solvers.fixpoint import build_minimal_repair
from repro.workloads.generators import random_instance
from repro.workloads.paper_instances import example5_instance, figure2_instance


class TestExample4:
    def test_start_sets(self):
        """Example 4: start(RRX, r1) = {0, 1}, start(RRX, r2) = {0}."""
        db = figure2_instance()
        r1 = DatabaseInstance(
            db.facts - {Fact("R", 1, 3)}
        )
        r2 = DatabaseInstance(
            db.facts - {Fact("R", 1, 2)}
        )
        assert accepted_start_constants(r1, "RRX") == frozenset({0, 1})
        assert accepted_start_constants(r2, "RRX") == frozenset({0})


class TestExample5:
    def test_states_sets(self):
        """ST_q(R(b,c), r) = {R, RR} and ST_q(R(d,e), r) = ∅ for q = RRX."""
        r = example5_instance()
        st_bc = states_set(r, "RRX", Fact("R", "b", "c"))
        assert st_bc == frozenset({1, 2})  # prefix lengths of R, RR
        st_de = states_set(r, "RRX", Fact("R", "d", "e"))
        assert st_de == frozenset()


class TestLemma8:
    def test_upward_closure(self, rng):
        """If uR in ST_q(f, r) then every longer vR is too (Lemma 8)."""
        for _ in range(30):
            db = random_instance(rng, 4, rng.randint(2, 8), ("R", "X"), 0.0)
            q = "RXRRR"
            positions = [i + 1 for i, s in enumerate(q) if s == "R"]
            for fact in db.facts:
                if fact.relation != "R":
                    continue
                st = states_set(db, q, fact)
                if st:
                    shortest = min(st)
                    expected = {p for p in positions if p >= shortest}
                    assert st == frozenset(expected)


class TestAcceptsPathFrom:
    def test_figure2(self):
        db = figure2_instance()
        nfa = query_nfa("RRX")
        assert accepts_path_from(db, nfa, 0)
        assert not accepts_path_from(db, nfa, 4)


class TestLemma6MinimalRepair:
    def test_start_minimality(self, rng):
        """The Lemma 9 repair minimizes start(q, ·) over all repairs."""
        for _ in range(25):
            db = random_instance(rng, 4, rng.randint(2, 8), ("R", "X"), 0.5)
            q = "RRX"
            r_star = build_minimal_repair(db, q)
            assert r_star.is_repair_of(db)
            minimal_start = accepted_start_constants(r_star, q)
            for repair in iter_repairs(db, limit=200):
                assert minimal_start <= accepted_start_constants(repair, q)
