"""Tests for the rewinding operator and L↬(q) exploration (Definition 4)."""

import pytest
from hypothesis import given, strategies as st

from repro.automata.query_nfa import language_contains
from repro.words.factors import is_prefix, self_join_pairs
from repro.words.rewind import (
    enumerate_language,
    is_closed_under_rewinding_factor,
    is_closed_under_rewinding_prefix,
    iterate_rewinds,
    rewind_at,
    rewindings,
)
from repro.words.word import Word

words = st.text(alphabet="RSX", max_size=6).map(Word)


class TestRewindAt:
    def test_twitter_examples(self):
        """The intro's TWITTER example: three distinct rewinds of T...T."""
        q = Word("TWITTER")
        results = {str(w) for w in rewindings(q)}
        assert "TWITWITTER" in results     # factor TWIT at (0, 3)
        assert "TWITTWITTER" in results    # factor TWITT at (0, 4)
        assert "TWITTTER" in results       # factor TT at (3, 4)

    def test_rewind_formula(self):
        # q = u·R·v·R·w with u=A, v=B, w=C rewinds to u·Rv·Rv·Rw.
        assert rewind_at(Word("ARBRC"), 1, 3) == Word("ARBRBRC")

    def test_rewind_requires_equal_symbols(self):
        with pytest.raises(ValueError):
            rewind_at(Word("RX"), 0, 1)

    def test_rewind_bounds(self):
        with pytest.raises(ValueError):
            rewind_at(Word("RR"), 1, 1)

    @given(words)
    def test_rewind_lengthens(self, w):
        for i, j in self_join_pairs(w):
            rewound = rewind_at(w, i, j)
            assert len(rewound) == len(w) + (j - i)
            # The rewound word keeps the original prefix up to j+1.
            assert is_prefix(w[: j + 1], rewound)


class TestEnumerateLanguage:
    def test_self_join_free_language_is_singleton(self):
        assert enumerate_language("RXY", 20) == [Word("RXY")]

    def test_rrx_language(self):
        """L↬(RRX) = RR(R)*X (Figure 2 discussion)."""
        language = enumerate_language("RRX", 8)
        expected = [Word("RR" + "R" * k + "X") for k in range(6)]
        assert sorted(language) == sorted(expected)

    def test_rxry_language(self):
        """L↬(RXRY) = RX(RX)*RY."""
        language = enumerate_language("RXRY", 10)
        expected = [Word("RX" * (k + 1) + "RY") for k in range(4)]
        assert sorted(language) == sorted(expected)

    def test_contains_query(self):
        for q in ("RR", "RRX", "ARRX", "RXRXRYRY"):
            assert Word(q) in enumerate_language(q, len(q) + 4)

    @given(words)
    def test_agrees_with_nfa(self, q):
        """Lemma 4: NFA(q) accepts exactly L↬(q) (bounded check)."""
        if len(q) == 0:
            return
        bound = len(q) + 3
        language = set(enumerate_language(q, bound))
        # Every enumerated word is NFA-accepted.
        for word in language:
            assert language_contains(q, word)

    def test_iterate_rewinds_edges(self):
        edges = list(iterate_rewinds("RR", 2))
        assert (Word("RR"), Word("RRR")) in edges


class TestClosureChecks:
    def test_prefix_closure_matches_examples(self):
        assert is_closed_under_rewinding_prefix("RXRX", 12)
        assert not is_closed_under_rewinding_prefix("RXRY", 12)

    def test_factor_closure_matches_examples(self):
        assert is_closed_under_rewinding_factor("RXRYRY", 14)
        assert not is_closed_under_rewinding_factor("RXRXRYRY", 16)
