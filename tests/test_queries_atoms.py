"""Tests for terms and atoms."""

import pytest

from repro.queries.atoms import Atom, Variable, is_constant, is_variable


class TestVariable:
    def test_equality_by_name(self):
        assert Variable("x") == Variable("x")
        assert Variable("x") != Variable("y")

    def test_hashable_and_ordered(self):
        assert len({Variable("x"), Variable("x")}) == 1
        assert Variable("a") < Variable("b")

    def test_str(self):
        assert str(Variable("x1")) == "x1"


class TestTermPredicates:
    def test_is_variable(self):
        assert is_variable(Variable("x"))
        assert not is_variable("c")
        assert not is_variable(0)

    def test_is_constant(self):
        assert is_constant("c")
        assert is_constant(0)
        assert not is_constant(Variable("x"))


class TestAtom:
    def test_construction(self):
        atom = Atom("R", Variable("x"), "c")
        assert atom.relation == "R"
        assert atom.terms == (Variable("x"), "c")

    def test_empty_relation_rejected(self):
        with pytest.raises(ValueError):
            Atom("", Variable("x"), Variable("y"))

    def test_variables_and_constants(self):
        atom = Atom("R", Variable("x"), "c")
        assert atom.variables() == frozenset({Variable("x")})
        assert atom.constants() == frozenset({"c"})

    def test_is_fact(self):
        assert Atom("R", "a", "b").is_fact()
        assert not Atom("R", Variable("x"), "b").is_fact()

    def test_substitute(self):
        atom = Atom("R", Variable("x"), Variable("y"))
        result = atom.substitute({Variable("x"): "a"})
        assert result == Atom("R", "a", Variable("y"))

    def test_substitute_is_identity_on_constants(self):
        atom = Atom("R", "a", Variable("y"))
        result = atom.substitute({Variable("y"): "b"})
        assert result == Atom("R", "a", "b")

    def test_str(self):
        assert str(Atom("R", Variable("x"), "c")) == "R(x, c)"
