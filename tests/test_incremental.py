"""The incremental execution layer: delta solves must equal from-scratch.

Three levels are pinned differentially across randomized update
sequences:

* :class:`FixpointState` -- the maintained Figure 5 relation ``N`` must
  equal a fresh :func:`fixpoint_relation` run after every delta
  (inserts, removes, constants arriving/leaving the domain);
* :class:`DatalogState.resume` -- the resumed materialization of the
  Claim 5 programs must equal full re-evaluation under EDB insert
  streams (positive strata reseed semi-naively; negation-reading strata
  recompute);
* ``CertaintyEngine.solve_delta`` -- answers must equal ``solve`` on the
  updated instance for queries from all four Theorem 2 complexity
  classes, including the C3-violating (coNP) fallback through the sound
  pre-filter plus full SAT re-solve.
"""

import random

import pytest

from repro.datalog.cqa_program import (
    ADOM,
    UnsupportedQuery,
    build_cqa_program,
    instance_to_edb,
    rel,
)
from repro.datalog.engine import (
    CompactDatalogState,
    DatalogState,
    evaluate_program,
    evaluate_program_naive,
)
from repro.db.delta import Delta, DeltaInstance
from repro.db.facts import Fact
from repro.db.instance import DatabaseInstance
from repro.engine import CertaintyEngine
from repro.queries.generalized import GeneralizedPathQuery
from repro.solvers.fixpoint import (
    FixpointState,
    certain_answer_incremental,
    fixpoint_relation,
)
from repro.solvers.sat_encoding import (
    IncrementalSatContext,
    certain_answer_sat,
)
from repro.workloads.generators import (
    hardness_gadget_instance,
    planted_instance,
    random_instance,
)
from repro.workloads.paper_instances import figure3_instance

#: Two queries per Theorem 2 complexity class (as in the engine tests).
CLASS_QUERIES = [
    ("RR", "FO"),
    ("RXRX", "FO"),
    ("RRX", "NL-complete"),
    ("RXRY", "NL-complete"),
    ("RXRYRY", "PTIME-complete"),
    ("RXRRR", "PTIME-complete"),
    ("ARRX", "coNP-complete"),
    ("RXRXRYRY", "coNP-complete"),
]


def random_update(rng, db, alphabet, n_constants=6):
    """A random effective single-step delta over *db*."""
    overlay = DeltaInstance(db)
    for _ in range(rng.randint(1, 3)):
        current = sorted(overlay.facts)
        if current and rng.random() < 0.45:
            overlay.remove_fact(rng.choice(current))
        else:
            overlay.insert_fact(
                Fact(
                    rng.choice(alphabet),
                    rng.randint(0, n_constants - 1),
                    rng.randint(0, n_constants - 1),
                )
            )
    return overlay


class TestFixpointStateDifferential:
    @pytest.mark.parametrize("query,_cls", CLASS_QUERIES)
    def test_apply_delta_matches_fresh_relation(self, query, _cls):
        rng = random.Random(0x1DC + sum(map(ord, query)))
        alphabet = sorted(set(query))
        for trial in range(6):
            db = random_instance(rng, 5, rng.randint(2, 14), alphabet, 0.5)
            state = FixpointState.compute(db, query)
            for _step in range(8):
                overlay = random_update(rng, state.db, alphabet)
                new_db = overlay.commit()
                state.apply_delta(
                    new_db, overlay.added_facts, overlay.removed_facts
                )
                assert state.n_set == fixpoint_relation(new_db, query), (
                    query,
                    trial,
                    new_db,
                )

    def test_incremental_answer_carries_certificates(self):
        db = DatabaseInstance.from_triples(
            [("R", 0, 1), ("R", 1, 2), ("X", 2, 3)]
        )
        state = FixpointState.compute(db, "RRX")
        result = certain_answer_incremental(state)
        assert result.answer is True
        assert result.method == "fixpoint-incremental"
        assert result.witness_constant == 0
        # Break the path: the falsifying repair certificate must appear.
        overlay = DeltaInstance(db)
        overlay.remove_fact(Fact("X", 2, 3))
        new_db = overlay.commit()
        state.apply_delta(new_db, overlay.added_facts, overlay.removed_facts)
        result = certain_answer_incremental(state)
        assert result.answer is False
        assert result.falsifying_repair is not None
        assert result.falsifying_repair.is_repair_of(new_db)

    def test_empty_query_state(self):
        db = DatabaseInstance.from_triples([("R", 0, 1)])
        state = FixpointState.compute(db, "")
        overlay = DeltaInstance(db)
        overlay.insert_fact(Fact("R", 5, 6))
        new_db = overlay.commit()
        state.apply_delta(new_db, overlay.added_facts, overlay.removed_facts)
        assert state.n_set == fixpoint_relation(new_db, "")

    def test_domain_churn(self):
        """Constants leaving and re-entering adom keep N exact."""
        db = DatabaseInstance.from_triples([("R", 0, 1), ("R", 1, 2)])
        state = FixpointState.compute(db, "RR")
        steps = [
            Delta.removing(("R", 1, 2)),          # 2 leaves adom
            Delta.inserting(("R", 1, 2)),          # 2 returns
            Delta.removing(("R", 0, 1), ("R", 1, 2)),  # everything gone
            Delta.inserting(("R", 7, 8), ("R", 8, 9)),  # new component
        ]
        for delta in steps:
            overlay = delta.apply_to(state.db)
            new_db = overlay.commit()
            state.apply_delta(
                new_db, overlay.added_facts, overlay.removed_facts
            )
            assert state.n_set == fixpoint_relation(new_db, "RR")


class TestDatalogResume:
    NL_QUERIES = ["RRX", "RXRY", "UVUVWV"]

    @pytest.mark.parametrize("query", NL_QUERIES)
    def test_resume_matches_full_evaluation(self, query):
        rng = random.Random(0xDA7A + sum(map(ord, query)))
        cqa = build_cqa_program(query)
        for trial in range(4):
            db = planted_instance(
                rng, query, 6, n_paths=2, n_noise_facts=8, conflict_rate=0.5
            )
            facts = sorted(db.facts)
            keep = max(1, len(facts) - 4)
            base = DatabaseInstance(facts[:keep])
            state = DatalogState.evaluate(cqa.program, instance_to_edb(base))
            current = list(facts[:keep])
            for fact in facts[keep:]:
                current.append(fact)
                delta = {
                    rel(fact.relation): [(fact.key, fact.value)],
                    ADOM: [(fact.key,), (fact.value,)],
                }
                resumed = state.resume(delta)
                full = evaluate_program(
                    cqa.program,
                    instance_to_edb(DatabaseInstance(current)),
                )
                assert resumed == full, (query, trial, fact)

    @pytest.mark.parametrize("query", NL_QUERIES)
    def test_indexed_equals_naive(self, query):
        rng = random.Random(0x1DE + sum(map(ord, query)))
        cqa = build_cqa_program(query)
        for _ in range(6):
            db = random_instance(
                rng, 5, rng.randint(3, 18), sorted(set(query)), 0.5
            )
            edb = instance_to_edb(db)
            assert evaluate_program(cqa.program, edb) == (
                evaluate_program_naive(cqa.program, edb)
            )

    def test_resume_ignores_duplicate_tuples(self):
        cqa = build_cqa_program("RRX")
        db = DatabaseInstance.from_triples(
            [("R", 0, 1), ("R", 1, 2), ("X", 2, 3)]
        )
        state = DatalogState.evaluate(cqa.program, instance_to_edb(db))
        before = {p: set(rows) for p, rows in state.relations.items()}
        state.resume({rel("R"): [(0, 1)], ADOM: [(0,)]})
        assert {p: set(rows) for p, rows in state.relations.items()} == before


class TestSolveDeltaDifferential:
    @pytest.mark.parametrize("query,expected_class", CLASS_QUERIES)
    def test_solve_delta_matches_solve(self, query, expected_class):
        rng = random.Random(0x5D17 + sum(map(ord, query)))
        alphabet = sorted(set(query))
        engine = CertaintyEngine()
        reference = CertaintyEngine()
        assert str(engine.compile(query).complexity) == expected_class
        for trial in range(4):
            db = random_instance(rng, 5, rng.randint(2, 12), alphabet, 0.5)
            for _step in range(6):
                overlay = random_update(rng, db, alphabet)
                delta = Delta(
                    removes=tuple(sorted(overlay.removed_facts)),
                    inserts=tuple(sorted(overlay.added_facts)),
                )
                result = engine.solve_delta(db, delta, query)
                new_db = delta.apply_to(db).commit()
                expected = reference.solve(new_db, query)
                assert result.answer == expected.answer, (
                    query,
                    trial,
                    result.method,
                    new_db,
                )
                db = new_db
        # The update stream must be served mostly incrementally.
        assert engine.stats.delta_solves == 4 * 6
        assert engine.stats.incremental_hits > 0
        if expected_class != "coNP-complete":
            # One full solve per fresh instance; the rest are hits.
            assert engine.stats.incremental_hits >= 4 * 6 - 4 - 2

    def test_conp_fallback_is_flagged(self):
        """A C3-violating query that survives the pre-filter re-solves
        via SAT, and the result says so."""
        engine = CertaintyEngine()
        # Figure 3 flavor: ARRX on a fixpoint-yes instance.
        db = DatabaseInstance.from_triples(
            [("A", "a", "b"), ("R", "b", "c"), ("R", "c", "d"), ("X", "d", "e")]
        )
        delta = Delta.inserting(("R", "b", "b"))
        result = engine.solve_delta(db, delta, "ARRX")
        reference = CertaintyEngine().solve(
            delta.apply_to(db).commit(), "ARRX"
        )
        assert result.answer == reference.answer
        if result.method == "sat":
            assert result.details.get("prefilter") == "fixpoint-incremental-yes"

    def test_incremental_stats_and_details(self):
        engine = CertaintyEngine()
        db = DatabaseInstance.from_triples([("R", 0, 1), ("R", 1, 2)])
        first = engine.solve_delta(db, Delta.inserting(("R", 2, 3)), "RRX")
        assert first.details["incremental"] is False
        assert engine.stats.full_resolves == 1
        db2 = Delta.inserting(("R", 2, 3)).apply_to(db).commit()
        second = engine.solve_delta(db2, Delta.inserting(("R", 0, 9)), "RRX")
        assert second.details["incremental"] is True
        assert second.method == "fixpoint-incremental"
        assert engine.stats.incremental_hits == 1
        assert engine.stats.delta_solves == 2

    def test_overlay_argument(self):
        engine = CertaintyEngine()
        db = DatabaseInstance.from_triples([("R", 0, 1)])
        overlay = DeltaInstance(db)
        overlay.insert_fact(Fact("R", 1, 2))
        result = engine.solve_delta(db, overlay, "RR")
        assert result.answer == CertaintyEngine().solve(
            overlay.commit(), "RR"
        ).answer
        with pytest.raises(ValueError):
            engine.solve_delta(
                DatabaseInstance.empty(), overlay, "RR"
            )

    def test_forced_method_falls_back_to_full(self):
        engine = CertaintyEngine()
        db = DatabaseInstance.from_triples([("R", 0, 1), ("R", 1, 2)])
        result = engine.solve_delta(
            db, Delta.inserting(("R", 2, 3)), "RRX", method="fixpoint"
        )
        assert result.method == "fixpoint"
        assert result.details["incremental"] is False
        assert engine.stats.full_resolves == 1
        assert engine.stats.incremental_hits == 0

    def test_generalized_query_full_solve(self):
        from repro.queries.generalized import GeneralizedPathQuery

        engine = CertaintyEngine()
        db = DatabaseInstance.from_triples([("R", 0, 1), ("R", 1, 2)])
        gq = GeneralizedPathQuery("RR", {1: 0})
        result = engine.solve_delta(db, Delta.inserting(("R", 2, 3)), gq)
        reference = CertaintyEngine().solve(
            Delta.inserting(("R", 2, 3)).apply_to(db).commit(), gq
        )
        assert result.answer == reference.answer
        assert result.details["incremental"] is False


class TestSolveBatchIter:
    def _pairs(self, n=8):
        rng = random.Random(0xBA7)
        pairs = []
        for query, _cls in CLASS_QUERIES[:4]:
            for _ in range(n // 4):
                pairs.append(
                    (
                        random_instance(
                            rng, 4, 8, sorted(set(query)), 0.5
                        ),
                        query,
                    )
                )
        return pairs

    def test_sequential_stream_matches_batch(self):
        pairs = self._pairs()
        engine = CertaintyEngine()
        batch = engine.solve_batch(pairs)
        streamed = list(engine.solve_batch_iter(pairs))
        assert [i for i, _ in streamed] == list(range(len(pairs)))
        assert [r.answer for _, r in streamed] == [r.answer for r in batch]
        assert [r.method for _, r in streamed] == [r.method for r in batch]

    def test_sequential_stream_is_lazy(self):
        pairs = self._pairs()
        engine = CertaintyEngine()
        iterator = engine.solve_batch_iter(pairs)
        solves_before = engine.stats.solves
        index, _result = next(iterator)
        assert index == 0
        # Only the first instance has been solved so far.
        assert engine.stats.solves == solves_before + 1
        iterator.close()

    def test_parallel_stream_matches_sequential(self):
        pairs = self._pairs()
        engine = CertaintyEngine()
        expected = engine.solve_batch(pairs)
        streamed = sorted(engine.solve_batch_iter(pairs, workers=2))
        assert [i for i, _ in streamed] == list(range(len(pairs)))
        assert [r.answer for _, r in streamed] == [
            r.answer for r in expected
        ]
        assert engine.stats.parallel_batches == 1


@pytest.mark.slow
class TestIncrementalSweep:
    """Longer randomized update sequences, excluded from the fast lane."""

    @pytest.mark.parametrize("query,_cls", CLASS_QUERIES)
    def test_long_update_streams(self, query, _cls):
        rng = random.Random(0x10F6 + sum(map(ord, query)))
        alphabet = sorted(set(query))
        engine = CertaintyEngine()
        reference = CertaintyEngine()
        db = random_instance(rng, 6, 10, alphabet, 0.5)
        for _step in range(40):
            overlay = random_update(rng, db, alphabet, n_constants=7)
            delta = Delta(
                removes=tuple(sorted(overlay.removed_facts)),
                inserts=tuple(sorted(overlay.added_facts)),
            )
            result = engine.solve_delta(db, delta, query)
            db = delta.apply_to(db).commit()
            assert result.answer == reference.solve(db, query).answer


def _normalized(relations):
    """Relations as ``{predicate: set(rows)}`` with empty predicates
    dropped (the two engines may differ on materializing empties)."""
    return {
        predicate: set(map(tuple, rows))
        for predicate, rows in relations.items()
        if rows
    }


class TestCompactResumeDifferential:
    """The compact (int-tuple) resume path against the object engine.

    The retained :class:`CompactDatalogState` materialization must track
    :class:`DatalogState` exactly under random EDB insert streams (the
    shared resume contract is insert-only) for queries from all four
    Theorem 2 complexity classes.
    """

    @pytest.mark.parametrize("query,_cls", CLASS_QUERIES)
    def test_resume_matches_object_engine(self, query, _cls):
        try:
            cqa = build_cqa_program(query)
        except UnsupportedQuery:
            pytest.skip("no Claim 5 program for {}".format(query))
        rng = random.Random(0xC0DE + sum(map(ord, query)))
        alphabet = sorted(set(query))
        for trial in range(3):
            db = random_instance(
                rng, 6, rng.randint(4, 16), alphabet, 0.5
            )
            edb = instance_to_edb(db)
            obj = DatalogState.evaluate(cqa.program, edb)
            compact = CompactDatalogState.evaluate_decoded(cqa.program, edb)
            assert _normalized(compact.decoded_relations()) == _normalized(
                obj.relations
            ), (query, trial)
            for _step in range(6):
                # Insert-only random delta: fresh facts, duplicates, and
                # brand-new constants all ride the same resume call.
                inserts = [
                    Fact(
                        rng.choice(alphabet),
                        rng.randint(0, 7),
                        rng.randint(0, 7),
                    )
                    for _ in range(rng.randint(1, 3))
                ]
                delta = {}
                for fact in inserts:
                    delta.setdefault(rel(fact.relation), []).append(
                        (fact.key, fact.value)
                    )
                    delta.setdefault(ADOM, []).extend(
                        [(fact.key,), (fact.value,)]
                    )
                resumed_obj = obj.resume(delta)
                resumed_compact = compact.resume_decoded(delta)
                assert _normalized(resumed_compact) == _normalized(
                    resumed_obj
                ), (query, trial, inserts)


class TestCompactResumeNegationDifferential:
    """Compact resume on a stratified program with negation and
    constants: the recompute-downstream path must also track the object
    engine under insert streams."""

    def test_resume_with_negation_strata(self):
        from repro.datalog.syntax import Literal, Program, Rule, var

        x, y = var("X"), var("Y")
        program = Program(
            [
                Rule(Literal("base", (x,)), (Literal("e", (x, y)),)),
                Rule(
                    Literal("p", (x, y)),
                    (
                        Literal("e", (x, y)),
                        Literal("neq", (x, "a")),
                        Literal("e", (y, "c"), negated=True),
                    ),
                ),
                Rule(
                    Literal("reach", (x, y)),
                    (Literal("p", (x, y)),),
                ),
                Rule(
                    Literal("reach", (x, y)),
                    (Literal("reach", (x, "b")), Literal("p", ("b", y))),
                ),
            ]
        )
        rng = random.Random(0x9E6)
        constants = "abcdefg"
        for trial in range(4):
            edb = {
                "e": sorted(
                    {
                        (rng.choice(constants), rng.choice(constants))
                        for _ in range(6)
                    }
                )
            }
            obj = DatalogState.evaluate(program, edb)
            compact = CompactDatalogState.evaluate_decoded(program, edb)
            assert _normalized(compact.decoded_relations()) == _normalized(
                obj.relations
            ), (trial, edb)
            for _step in range(8):
                delta = {
                    "e": [
                        (rng.choice(constants), rng.choice(constants))
                        for _ in range(rng.randint(1, 2))
                    ]
                }
                resumed_obj = obj.resume(delta)
                resumed_compact = compact.resume_decoded(delta)
                assert _normalized(resumed_compact) == _normalized(
                    resumed_obj
                ), (trial, delta)


class TestIncrementalSatDifferential:
    """Assumption-based SAT reuse against from-scratch encodings."""

    @pytest.mark.parametrize("query", ["ARRX", "RXRXRYRY"])
    def test_random_chains_match_fresh_sat(self, query):
        rng = random.Random(0x5A7 + sum(map(ord, query)))
        alphabet = sorted(set(query))
        for trial in range(3):
            db = random_instance(rng, 5, rng.randint(3, 12), alphabet, 0.5)
            ctx = IncrementalSatContext(db, query)
            assert (
                ctx.solve().answer == certain_answer_sat(db, query).answer
            )
            for _step in range(6):
                overlay = random_update(rng, db, alphabet)
                new_db = overlay.commit()
                ctx.apply_delta(
                    new_db, overlay.added_facts, overlay.removed_facts
                )
                got = ctx.solve()
                want = certain_answer_sat(new_db, query)
                assert got.answer == want.answer, (query, trial, new_db)
                if not got.answer:
                    assert got.falsifying_repair.is_repair_of(new_db)
                db = new_db

    def test_figure3_chain(self):
        """The paper's Figure 3 instance under edits around the fork."""
        db = figure3_instance()
        ctx = IncrementalSatContext(db, "ARRX")
        assert ctx.solve().answer == certain_answer_sat(db, "ARRX").answer
        rng = random.Random(0xF13)
        for _step in range(8):
            overlay = random_update(rng, db, ("A", "R", "X"))
            new_db = overlay.commit()
            ctx.apply_delta(
                new_db, overlay.added_facts, overlay.removed_facts
            )
            assert (
                ctx.solve().answer
                == certain_answer_sat(new_db, "ARRX").answer
            ), new_db
            db = new_db
        # The chain must actually have reused loaded clause groups.
        assert ctx.last_reused > 0

    def test_gadget_family_ground_truth(self):
        """Scaled hardness gadgets: provable answers, then delta chains."""
        rng = random.Random(0xF16)
        for n_branches, n_straight in [(3, 0), (3, 1), (4, 2), (4, 0)]:
            db = hardness_gadget_instance(rng, n_branches, n_straight)
            ctx = IncrementalSatContext(db, "ARRX")
            result = ctx.solve()
            assert result.answer is (n_straight >= 1), (
                n_branches,
                n_straight,
            )
            if not result.answer:
                assert result.falsifying_repair.is_repair_of(db)
            for _step in range(4):
                overlay = random_update(rng, db, ("A", "R", "X"))
                new_db = overlay.commit()
                ctx.apply_delta(
                    new_db, overlay.added_facts, overlay.removed_facts
                )
                assert (
                    ctx.solve().answer
                    == certain_answer_sat(new_db, "ARRX").answer
                ), (n_branches, n_straight, new_db)
                db = new_db


class TestGeneralizedDeltaDifferential:
    """Maintained Section 8 states against cold generalized solves."""

    GQ = [
        GeneralizedPathQuery("RR", {0: 0}),       # pure Lemma 27 segment
        GeneralizedPathQuery("RX", {2: 1}),       # ext(q), C3 inner word
        GeneralizedPathQuery("RXRYRY", {0: 0}),   # PTIME segment check
        GeneralizedPathQuery("ARRX", {4: 1}),     # ext(q), coNP inner word
    ]

    @pytest.mark.parametrize("gq", GQ, ids=str)
    def test_chain_matches_cold_solve(self, gq):
        rng = random.Random(0x6E2 + sum(map(ord, str(gq))))
        alphabet = sorted(set(str(gq.word)))
        engine = CertaintyEngine()
        for trial in range(3):
            db = random_instance(rng, 5, rng.randint(3, 12), alphabet, 0.5)
            warm = 0
            for _step in range(6):
                overlay = random_update(rng, db, alphabet)
                delta = Delta(
                    removes=tuple(sorted(overlay.removed_facts)),
                    inserts=tuple(sorted(overlay.added_facts)),
                )
                result = engine.solve_delta(db, delta, gq)
                new_db = delta.apply_to(db).commit()
                cold = CertaintyEngine().solve(new_db, gq)
                assert result.answer == cold.answer, (
                    str(gq),
                    trial,
                    new_db,
                )
                assert result.method == "generalized"
                if result.details.get("incremental"):
                    warm += 1
                db = new_db
            # Only the first step of each chain pays a full compute.
            assert warm >= 5, (str(gq), trial, warm)
        assert engine.stats.incremental_hits > 0
