"""Additional depth tests: engine cross-checks, D/C degeneration, and
exhaustive structural checks over short words."""

import itertools
import random

from hypothesis import given, settings, strategies as st

from repro.classification.conditions import (
    satisfies_c1,
    satisfies_c2,
    satisfies_c3,
)
from repro.classification.generalized import (
    satisfies_d1,
    satisfies_d2,
    satisfies_d3,
)
from repro.datalog.engine import _evaluate_rule, evaluate_program
from repro.datalog.stratify import is_linear, stratify
from repro.datalog.syntax import Literal, Program, Rule, var
from repro.datalog.cqa_program import build_cqa_program, split_query
from repro.queries.generalized import GeneralizedPathQuery, TerminalWord
from repro.words.word import Word

words = st.text(alphabet="RSX", max_size=7).map(Word)


class TestDConditionsDegenerate:
    """With γ = ⊤, D1/D2/D3 must equal C1/C2/C3 exactly."""

    @settings(max_examples=150, deadline=None)
    @given(words)
    def test_equalities(self, w):
        terminal = TerminalWord(w, None)
        assert satisfies_d1(terminal) == satisfies_c1(w)
        assert satisfies_d2(terminal) == satisfies_c2(w)
        assert satisfies_d3(terminal) == satisfies_c3(w)

    @settings(max_examples=80, deadline=None)
    @given(words)
    def test_constant_free_query_objects(self, w):
        q = GeneralizedPathQuery(w)
        assert satisfies_d1(q) == satisfies_c1(w)
        assert satisfies_d3(q) == satisfies_c3(w)


class TestEngineAgainstNaive:
    """The semi-naive engine must agree with naive bottom-up iteration."""

    def _naive(self, program, edb):
        relations = {
            predicate: {tuple(row) for row in rows}
            for predicate, rows in edb.items()
        }
        for predicate in program.idb_predicates() | program.edb_predicates():
            relations.setdefault(predicate, set())
        for stratum in stratify(program):
            rules = [r for r in program.rules if r.head.predicate in stratum]
            changed = True
            while changed:
                changed = False
                for rule in rules:
                    derived = _evaluate_rule(rule, relations)
                    fresh = derived - relations[rule.head.predicate]
                    if fresh:
                        relations[rule.head.predicate] |= fresh
                        changed = True
        return relations

    def test_random_graph_programs(self, rng):
        x, y, z = var("X"), var("Y"), var("Z")
        program = Program(
            [
                Rule(Literal("reach", (x, y)), (Literal("edge", (x, y)),)),
                Rule(
                    Literal("reach", (x, z)),
                    (Literal("reach", (x, y)), Literal("edge", (y, z))),
                ),
                Rule(Literal("node", (x,)), (Literal("edge", (x, y)),)),
                Rule(Literal("node", (y,)), (Literal("edge", (x, y)),)),
                Rule(
                    Literal("unreached", (x, y)),
                    (
                        Literal("node", (x,)),
                        Literal("node", (y,)),
                        Literal("reach", (x, y), negated=True),
                    ),
                ),
            ]
        )
        for _ in range(15):
            n = rng.randint(2, 6)
            edges = [
                (rng.randrange(n), rng.randrange(n))
                for _ in range(rng.randint(1, 10))
            ]
            edb = {"edge": edges}
            semi = evaluate_program(program, edb)
            naive = self._naive(program, edb)
            assert semi == naive

    def test_cqa_program_on_random_instances(self, rng):
        """The generated Claim 5 program: semi-naive == naive."""
        from repro.datalog.cqa_program import instance_to_edb
        from repro.workloads.generators import random_instance

        program = build_cqa_program("RRX").program
        for _ in range(10):
            db = random_instance(rng, 4, rng.randint(2, 10), ("R", "X"), 0.5)
            edb = instance_to_edb(db)
            assert evaluate_program(program, edb) == self._naive(program, edb)


class TestExhaustiveProgramStructure:
    def test_all_short_c2_programs_linear_and_stratified(self):
        """Lemma 14's syntactic promise, exhaustively up to length 5."""
        for n in range(2, 6):
            for combo in itertools.product("RX", repeat=n):
                q = "".join(combo)
                if not satisfies_c2(q) or satisfies_c1(q):
                    continue
                if split_query(q) is None:
                    continue
                program = build_cqa_program(q).program
                assert is_linear(program), q
                assert stratify(program), q

    def test_split_head_tail_partition(self):
        for n in range(2, 6):
            for combo in itertools.product("RX", repeat=n):
                q = "".join(combo)
                parts = split_query(q)
                if parts is None:
                    continue
                assert parts.head + parts.tail == Word(q)
                assert len(parts.cycle) >= 1
