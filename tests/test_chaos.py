"""Seeded chaos schedules over both transports, end to end.

The ISSUE's acceptance criteria: a deterministic fault schedule mixing
crashes (after commit), drops (before apply), delays past deadlines, and
duplicated deliveries must leave **zero lost and zero double-applied
writes**, with every request resolving to an answer or to one of the
typed fail-fast errors (:class:`DeadlineExceeded`,
:class:`ServerOverloaded`, :class:`ShardUnavailable`) -- never a hang --
and a shard whose restart budget is exhausted must keep serving reads of
durable residents *degraded* from its journal while the breaker is open,
then recover through a half-open probe.
"""

import asyncio
import time

import pytest

from repro.db.delta import Delta
from repro.db.instance import DatabaseInstance
from repro.scenarios.oracle import check_read_outcomes
from repro.serving import (
    AsyncCertaintyServer,
    DeadlineExceeded,
    FaultPlan,
    FaultRule,
    MemoryJournalStore,
    RestartPolicy,
    ServerOverloaded,
    ShardRequest,
    ShardUnavailable,
    ShardWorker,
)

TRANSPORTS = ["thread", "process"]


def _toy() -> DatabaseInstance:
    return DatabaseInstance.from_triples(
        [("R", 0, 1), ("R", 1, 2), ("X", 2, 3)]
    )


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestScriptedSchedule:
    """One worker, one fault per batch, every kind in the menagerie."""

    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_crash_drop_delay_dup_schedule(self, transport):
        plan = FaultPlan(
            [
                FaultRule("crash", batch=1, times=1),  # die after commit
                FaultRule("drop", batch=3, times=1),   # die before apply
                FaultRule("delay", batch=4, seconds=0.2, times=1),
                FaultRule("dup", batch=5, times=1),    # deliver twice
            ]
        )
        store = MemoryJournalStore()
        worker = ShardWorker(
            0,
            transport=transport,
            journal_store=store,
            faults=plan,
            restart_policy=RestartPolicy(backoff_base=0.0),
        )
        try:
            base = _toy()
            worker.execute(
                [ShardRequest("register", name="toy", db=base)]
            )  # batch 0: clean
            # Batch 1: the delta commits, then the shard dies before the
            # reply -- recovery must replay the journal, not the write.
            d1 = ShardRequest(
                "delta", name="toy",
                delta=Delta.removing(("X", 2, 3)), query="RRX",
            )
            worker.execute([d1])
            assert d1.error is None and d1.result.answer is False
            s2 = ShardRequest("solve", name="toy", query="RRX")
            worker.execute([s2])  # batch 2: clean read-your-write
            assert s2.result.answer is False
            # Batch 3: the shard dies before applying -- the retried
            # delivery must land the write exactly once.
            d3 = ShardRequest(
                "delta", name="toy",
                delta=Delta.inserting(("X", 2, 3)), query="RRX",
            )
            worker.execute([d3])
            assert d3.error is None and d3.result.answer is True
            # Batch 4: delayed 0.2s against a ~50ms deadline.
            s4 = ShardRequest(
                "solve", name="toy", query="RRX",
                deadline=time.monotonic() + 0.05,
            )
            worker.execute([s4])
            assert isinstance(s4.error, DeadlineExceeded)
            # Batch 5: delivered twice; sequence numbers shield the
            # write, the duplicate's rows are discarded.
            d5 = ShardRequest(
                "delta", name="toy",
                delta=Delta.removing(("R", 0, 1)), query="RRX",
            )
            worker.execute([d5])
            assert d5.error is None and d5.result.answer is False
            s6 = ShardRequest("solve", name="toy", query="RRX")
            worker.execute([s6])  # batch 6: clean
            assert s6.result.answer is False
            got = ShardRequest("get", name="toy")
            worker.execute([got])  # batch 7: clean
            expected = (
                Delta.removing(("X", 2, 3))
                .apply_to(base).commit()
            )
            expected = Delta.inserting(("X", 2, 3)).apply_to(
                expected
            ).commit()
            expected = Delta.removing(("R", 0, 1)).apply_to(
                expected
            ).commit()
            assert got.result == expected
            stats = worker.stats()
            assert stats["transport"]["restarts"] == 2  # crash + drop
            assert stats["deadline_shed"] >= 1
            assert stats["transport"]["breaker"] == "closed"
            assert plan.describe()["injected"] == {
                "crash": 1, "drop": 1, "delay": 1, "dup": 1,
            }
        finally:
            worker.stop()


class TestBreakerLifecycle:
    """Budget exhaustion -> open -> degraded reads -> half-open probe."""

    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_exhausted_budget_serves_degraded_then_recovers(self, transport):
        clock = FakeClock()
        policy = RestartPolicy(
            max_restarts=1,
            window=60.0,
            backoff_base=10.0,
            jitter=0.0,
            clock=clock,
        )
        plan = FaultPlan(
            [FaultRule("crash", batch=1), FaultRule("crash", batch=2)]
        )
        store = MemoryJournalStore()
        worker = ShardWorker(
            0,
            transport=transport,
            journal_store=store,
            faults=plan,
            restart_policy=policy,
        )
        try:
            worker.execute([ShardRequest("register", name="toy", db=_toy())])
            # First crash: inside the budget, supervised restart serves it.
            s1 = ShardRequest("solve", name="toy", query="RRX")
            worker.execute([s1])
            assert s1.result.answer is True
            health = worker.stats()["transport"]
            assert health["restarts"] == 1
            assert health["breaker"] == "closed"
            # Second crash: budget (1 per 60s) is spent -- the breaker
            # trips, but the read is a durable resident, so it is served
            # *degraded* from the journal instead of failing.
            s2 = ShardRequest("solve", name="toy", query="RRX")
            worker.execute([s2])
            assert s2.error is None and s2.result.answer is True
            health = worker.stats()["transport"]
            assert health["breaker"] == "open"
            assert health["degraded_served"] == 1
            assert health["restarts"] == 1  # no restart was attempted
            # Writes cannot be served degraded: fail fast, typed.
            d = ShardRequest(
                "delta", name="toy",
                delta=Delta.removing(("X", 2, 3)), query="RRX",
            )
            worker.execute([d])
            assert isinstance(d.error, ShardUnavailable)
            # Another read while open: degraded again, still no restart.
            s3 = ShardRequest("solve", name="toy", query="RRX")
            worker.execute([s3])
            assert s3.result.answer is True
            health = worker.stats()["transport"]
            assert health["degraded_served"] == 2
            assert health["unavailable_shed"] == 1
            # Cooldown (backoff(1) = 10s) elapses on the injected clock:
            # the next batch is a half-open probe, allowed to restart
            # regardless of the window budget.
            clock.advance(10.5)
            assert worker.stats()["transport"]["breaker"] == "half_open"
            probe = ShardRequest("solve", name="toy", query="RRX")
            worker.execute([probe])
            assert probe.result.answer is True
            health = worker.stats()["transport"]
            assert health["breaker"] == "closed"
            assert health["restarts"] == 2
            assert health["consecutive_failures"] == 0
        finally:
            worker.stop()


class TestServerChaosAcceptance:
    """The acceptance run: seeded crash+delay+dup chaos through the
    async server, both transports, zero lost or double-applied writes,
    every request resolving to an answer or a typed error."""

    DELTAS = [
        Delta.removing(("X", 2, 3)),
        Delta.inserting(("X", 3, 4)),
        Delta.inserting(("R", 2, 3)),
        Delta.removing(("R", 0, 1)),
    ]

    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_chaos_run_is_exactly_once_and_never_hangs(self, transport):
        chaos = (
            "crash:every=3;dup:every=4;delay:seconds=0.2,every=5;seed=13"
        )
        base = _toy()

        async def scenario():
            async with AsyncCertaintyServer(
                num_shards=2,
                transport=transport,
                journal_store="memory",
                faults=chaos,
                restart_policy=RestartPolicy(backoff_base=0.0),
            ) as server:
                await server.register("toy", base)
                # Writes, in order, no timeout: every one must commit
                # exactly once through whatever the schedule throws.
                for delta in self.DELTAS:
                    result = await server.solve_delta("toy", delta, "RRX")
                    assert result is not None
                # A concurrent read burst with a deadline tight enough
                # that a delayed batch sheds: every request must resolve
                # to an answer or a typed error -- never hang.
                reads = await asyncio.gather(
                    *(
                        server.solve("toy", "RRX", timeout=0.15)
                        for _ in range(12)
                    ),
                    return_exceptions=True,
                )
                final = await server.get_instance("toy")
                return reads, final, server.stats()

        reads, final, stats = asyncio.run(scenario())

        expected = base
        for delta in self.DELTAS:
            expected = delta.apply_to(expected).commit()
        assert final == expected  # zero lost, zero double-applied

        # Shared differential oracle (repro.scenarios.oracle): every
        # read either matches the independent reference answer on the
        # committed instance or is one of the typed shed errors.
        check_read_outcomes(
            reads,
            expected,
            "RRX",
            allowed=(DeadlineExceeded, ServerOverloaded, ShardUnavailable),
        )
        # The schedule actually fired (deterministic in the seed): the
        # writes alone span enough batches to hit ``every=3``.
        injected = stats["faults"]["injected"]
        assert injected.get("crash", 0) >= 1
        assert stats["faults"]["armed"] is True
