"""The paper's figure/example claims, asserted verbatim against the library."""

from repro.db.evaluation import path_query_satisfied, query_satisfied
from repro.db.facts import Fact
from repro.db.instance import DatabaseInstance
from repro.db.repairs import count_repairs, iter_repairs
from repro.solvers.brute_force import certain_answer_brute_force
from repro.solvers.certainty import certain_answer
from repro.automata.query_nfa import query_nfa
from repro.automata.runs import accepts_path_from
from repro.workloads.paper_instances import (
    example1_q1,
    example1_q2,
    example2_q1,
    example5_instance,
    example7_instance,
    figure1_instance,
    figure2_instance,
    figure3_instance,
    figure6_instance,
    intro_rr_fo_instance,
)


class TestExample1:
    """Self-joins matter: db is yes for q1 = R(x,y),R(y,x) but no for its
    self-join-free counterpart q2 = R(x,y),S(y,x)."""

    def test_figure1_has_16_repairs(self):
        db = figure1_instance()
        assert count_repairs(db) == 16

    def test_q1_certain(self):
        db = figure1_instance()
        assert certain_answer_brute_force(db, example1_q1()).answer

    def test_q2_not_certain(self):
        db = figure1_instance()
        result = certain_answer_brute_force(db, example1_q2())
        assert not result.answer
        # The paper's witness repair: {R(a,a), R(b,b), S(a,b), S(b,a)}.
        witness = DatabaseInstance.from_triples(
            [("R", "a", "a"), ("R", "b", "b"), ("S", "a", "b"), ("S", "b", "a")]
        )
        assert witness.is_repair_of(db)
        assert not query_satisfied(example1_q2(), witness)

    def test_q1_reasoning(self):
        """Every repair with R(a,a) or R(b,b) satisfies q1; one without
        both contains R(a,b) and R(b,a) which also satisfy q1."""
        db = figure1_instance()
        q1 = example1_q1()
        for repair in iter_repairs(db):
            assert query_satisfied(q1, repair)


class TestExample2:
    def test_q1_fo_characterization(self):
        """db is a yes-instance of CERTAINTY(R(x,z) ∧ R(y,z)) iff it
        contains some R-fact."""
        q1 = example2_q1()
        some = DatabaseInstance.from_triples([("R", 0, 1), ("R", 0, 2)])
        assert certain_answer_brute_force(some, q1).answer
        empty = DatabaseInstance.from_triples([("S", 0, 1)])
        assert not certain_answer_brute_force(empty, q1).answer


class TestIntroRR:
    def test_rr_certain(self):
        db = intro_rr_fo_instance()
        assert certain_answer(db, "RR").answer
        assert certain_answer(db, "RR").method == "fo"


class TestFigure2:
    def test_two_repairs_both_satisfy(self):
        db = figure2_instance()
        repairs = list(iter_repairs(db))
        assert len(repairs) == 2
        for repair in repairs:
            assert path_query_satisfied("RRX", repair)

    def test_no_common_exact_start(self):
        """No single constant starts an exact RRX path in every repair."""
        db = figure2_instance()
        repairs = list(iter_repairs(db))
        common = set(db.adom())
        for repair in repairs:
            starts = set()
            for c in repair.adom():
                from repro.db.paths import has_path_with_trace

                if has_path_with_trace(repair, "RRX", start=c):
                    starts.add(c)
            common &= starts
        assert common == set()

    def test_common_rewound_start_is_zero(self):
        """Both repairs have a path from 0 with trace in RR(R)*X."""
        db = figure2_instance()
        nfa = query_nfa("RRX")
        for repair in iter_repairs(db):
            assert accepts_path_from(repair, nfa, 0)

    def test_certain(self):
        assert certain_answer(figure2_instance(), "RRX").answer


class TestFigure3:
    def test_every_repair_has_accepted_path_from_0(self):
        db = figure3_instance()
        nfa = query_nfa("ARRX")
        for repair in iter_repairs(db):
            assert accepts_path_from(repair, nfa, 0)

    def test_rac_repair_falsifies(self):
        db = figure3_instance()
        bad = [r for r in iter_repairs(db) if Fact("R", "a", "c") in r]
        assert bad
        for repair in bad:
            assert not path_query_satisfied("ARRX", repair)

    def test_not_certain(self):
        assert not certain_answer(figure3_instance(), "ARRX").answer


class TestFigure6:
    def test_consistent_chain(self):
        db = figure6_instance()
        assert db.is_consistent()
        assert certain_answer(db, "RRX").answer


class TestExamples5And7:
    def test_example5_instance_is_consistent(self):
        assert example5_instance().is_consistent()

    def test_example7_claims(self):
        from repro.db.paths import is_terminal, has_path_with_trace

        db = example7_instance()
        assert is_terminal(db, "c", "RSRT")
        # db |= c --RS->> c --RT->> f but not c --RSRT->> f.
        assert has_path_with_trace(db, "RS", "c", "c", consistent_only=True)
        assert has_path_with_trace(db, "RT", "c", "f", consistent_only=True)
        assert not has_path_with_trace(db, "RSRT", "c", "f", consistent_only=True)
