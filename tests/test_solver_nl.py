"""Tests for the linear-Datalog NL solver (Lemma 14, Claim 5)."""

import pytest

from repro.db.repairs import count_repairs
from repro.solvers.brute_force import certain_answer_brute_force
from repro.solvers.nl_solver import certain_answer_nl, nl_supported
from repro.workloads.generators import planted_instance, random_instance
from repro.workloads.paper_instances import figure2_instance

NL_QUERIES = ["RRX", "RXRY", "RXRYR", "UVUVWV", "RRRX"]


class TestSupport:
    @pytest.mark.parametrize("q", NL_QUERIES)
    def test_supported(self, q):
        assert nl_supported(q)

    def test_unsupported(self):
        assert not nl_supported("ARRX")


class TestPaperInstances:
    def test_figure2(self):
        result = certain_answer_nl(figure2_instance(), "RRX")
        assert result.answer
        assert result.witness_constant == 0
        assert "RR (R)* X" in result.details["decomposition"].replace("  ", " ")


class TestDifferential:
    @pytest.mark.parametrize("q", NL_QUERIES)
    def test_random_instances(self, q, rng):
        alphabet = sorted(set(q))
        for _ in range(40):
            db = random_instance(rng, 4, rng.randint(2, 11), alphabet, 0.5)
            if count_repairs(db) > 4000:
                continue
            expected = certain_answer_brute_force(db, q).answer
            assert certain_answer_nl(db, q).answer == expected

    @pytest.mark.parametrize("q", NL_QUERIES)
    def test_planted_instances(self, q, rng):
        for _ in range(25):
            db = planted_instance(
                rng, q, rng.randint(2, 5),
                n_paths=rng.randint(1, 2),
                n_noise_facts=rng.randint(0, 6),
                conflict_rate=0.6,
            )
            if count_repairs(db) > 4000:
                continue
            expected = certain_answer_brute_force(db, q).answer
            assert certain_answer_nl(db, q).answer == expected

    def test_no_answer_on_empty_instance(self):
        from repro.db.instance import DatabaseInstance

        result = certain_answer_nl(DatabaseInstance.empty(), "RRX")
        assert not result.answer

    def test_no_answer_has_certificate(self, rng):
        from repro.db.evaluation import path_query_satisfied

        found = 0
        for _ in range(40):
            db = random_instance(rng, 4, rng.randint(2, 9), ("R", "X"), 0.6)
            result = certain_answer_nl(db, "RRX")
            if not result.answer:
                found += 1
                assert result.falsifying_repair.is_repair_of(db)
                assert not path_query_satisfied("RRX", result.falsifying_repair)
        assert found > 0
