"""Tests for the Claim 5 CQA program generator (Lemma 14)."""

import pytest

from repro.automata.dfa import DFA
from repro.datalog.cqa_program import (
    UnsupportedQuery,
    build_cqa_program,
    instance_to_edb,
    split_query,
    _split_language_dfa,
)
from repro.datalog.stratify import is_linear, stratify
from repro.db.instance import DatabaseInstance
from repro.automata.query_nfa import nfa_min
from repro.words.word import Word

NL_QUERIES = ["RRX", "RXRY", "RXRYR", "UVUVWV", "RRRX", "RRRRX"]


class TestSplitQuery:
    @pytest.mark.parametrize("q", NL_QUERIES)
    def test_split_exists_and_verified(self, q):
        parts = split_query(q)
        assert parts is not None
        assert parts.head + parts.tail == Word(q)
        assert parts.cycle
        language = _split_language_dfa(parts.head, parts.cycle, parts.tail)
        assert language.equivalent(nfa_min(q))

    def test_rrx_split(self):
        parts = split_query("RRX")
        assert (str(parts.head), str(parts.cycle), str(parts.tail)) == (
            "RR", "R", "X"
        )

    def test_rxry_split(self):
        parts = split_query("RXRY")
        assert str(parts.head) == "RXR"
        assert str(parts.cycle) == "XR"
        assert str(parts.tail) == "Y"

    def test_uvuvwv_split(self):
        parts = split_query("UVUVWV")
        assert str(parts.head) == "UVUV"
        assert str(parts.cycle) == "UV"
        assert str(parts.tail) == "WV"

    def test_no_split_for_conp_queries(self):
        assert split_query("ARRX") is None
        assert split_query("RXRXRYRY") is None


class TestProgramShape:
    @pytest.mark.parametrize("q", NL_QUERIES)
    def test_program_is_linear_and_stratified(self, q):
        """Lemma 14: the program is linear Datalog with stratified negation."""
        program = build_cqa_program(q).program
        assert is_linear(program)
        strata = stratify(program)  # raises if unstratifiable
        assert strata

    def test_program_has_negation(self):
        program = build_cqa_program("RRX").program
        assert any(
            literal.negated for rule in program.rules for literal in rule.body
        )

    def test_unsupported_raises(self):
        with pytest.raises(UnsupportedQuery):
            build_cqa_program("ARRX")

    def test_instance_to_edb(self):
        db = DatabaseInstance.from_triples([("R", 0, 1), ("X", 1, 2)])
        edb = instance_to_edb(db)
        assert set(edb["adom"]) == {(0,), (1,), (2,)}
        assert edb["rel_R"] == [(0, 1)]
