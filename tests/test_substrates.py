"""Tests for the digraph, CNF and circuit substrates."""

import pytest

from repro.circuits.circuit import (
    Gate,
    MonotoneCircuit,
    random_assignment,
    random_monotone_circuit,
)
from repro.cnf.formula import Clause, CnfFormula, random_ksat
from repro.graphs.digraph import DiGraph, has_directed_path
from repro.graphs.generators import layered_dag, random_dag


class TestDiGraph:
    def test_edges_and_vertices(self):
        graph = DiGraph(vertices=[0], edges=[(1, 2), (2, 3)])
        assert graph.vertices == {0, 1, 2, 3}
        assert graph.edges == [(1, 2), (2, 3)]
        assert graph.successors(1) == {2}

    def test_reachability(self):
        graph = DiGraph(edges=[(0, 1), (1, 2), (3, 4)])
        assert has_directed_path(graph, 0, 2)
        assert not has_directed_path(graph, 0, 4)
        assert has_directed_path(graph, 0, 0)

    def test_acyclicity(self):
        assert DiGraph(edges=[(0, 1), (1, 2)]).is_acyclic()
        assert not DiGraph(edges=[(0, 1), (1, 0)]).is_acyclic()
        assert not DiGraph(edges=[(0, 0)]).is_acyclic()

    def test_random_dag_is_acyclic(self, rng):
        for _ in range(10):
            assert random_dag(8, 0.5, rng).is_acyclic()

    def test_layered_dag(self, rng):
        graph, source, target = layered_dag(4, 3, rng, density=0.6)
        assert graph.is_acyclic()
        assert source in graph and target in graph


class TestCnf:
    def test_clause_evaluation(self):
        clause = Clause((("x", True), ("y", False)))
        assert clause.satisfied_by({"x": True})
        assert clause.satisfied_by({"x": False, "y": False})
        assert not clause.satisfied_by({"x": False, "y": True})

    def test_empty_clause_rejected(self):
        with pytest.raises(ValueError):
            Clause(())

    def test_formula_satisfiability(self):
        sat = CnfFormula([Clause((("x", True),)), Clause((("y", False),))])
        assert sat.is_satisfiable()
        model = sat.satisfying_assignment()
        assert sat.satisfied_by(model)
        unsat = CnfFormula([Clause((("x", True),)), Clause((("x", False),))])
        assert not unsat.is_satisfiable()

    def test_int_clause_mapping(self):
        formula = CnfFormula([Clause((("b", False), ("a", True)))])
        clauses, numbering = formula.to_int_clauses()
        assert sorted(numbering) == ["a", "b"]
        assert sorted(clauses[0]) == [-numbering["b"], numbering["a"]]

    def test_random_ksat_shape(self, rng):
        formula = random_ksat(5, 7, 3, rng)
        assert len(formula) == 7
        for clause in formula.clauses:
            assert len(clause.literals) == 3
            assert len(clause.variables()) == 3

    def test_ksat_k_bound(self, rng):
        with pytest.raises(ValueError):
            random_ksat(2, 3, 5, rng)


class TestCircuits:
    def test_evaluation(self):
        circuit = MonotoneCircuit(
            ["x1", "x2", "x3"],
            [
                Gate("g1", "and", "x1", "x2"),
                Gate("g2", "or", "g1", "x3"),
            ],
            "g2",
        )
        assert circuit.value({"x1": True, "x2": True, "x3": False})
        assert not circuit.value({"x1": True, "x2": False, "x3": False})
        assert circuit.value({"x3": True})

    def test_validation(self):
        with pytest.raises(ValueError):
            Gate("g", "xor", "a", "b")
        with pytest.raises(ValueError):
            MonotoneCircuit(["x"], [Gate("g", "and", "x", "missing")], "g")
        with pytest.raises(ValueError):
            MonotoneCircuit(["x", "x"], [], "x")
        with pytest.raises(ValueError):
            MonotoneCircuit(["x"], [], "nope")

    def test_monotonicity(self, rng):
        """Flipping an input 0 -> 1 never flips the output 1 -> 0."""
        for _ in range(15):
            circuit = random_monotone_circuit(4, 6, rng)
            low = random_assignment(circuit.inputs, rng, p_true=0.3)
            high = dict(low)
            flip = rng.choice(circuit.inputs)
            high[flip] = True
            low[flip] = False
            assert circuit.value(low) <= circuit.value(high)

    def test_random_circuit_shape(self, rng):
        circuit = random_monotone_circuit(3, 5, rng)
        assert len(circuit) == 5
        assert circuit.output == "g5"
