"""Exhaustive NL-solver coverage over short words.

Scans *every* word up to a length bound: all C2 queries must admit a
language-verified ``head (cycle)* tail`` split (including the mid-pump
"extra notation" cases of Lemma 14), all non-C2 queries must be rejected,
and the generated programs must agree with brute force on seeded random
instances -- with emphasis on splits whose tail shares symbols with the
cycle, the shape the paper's suffix-aligned proof does not spell out.
"""

import itertools
import random

import pytest

from repro.classification.conditions import satisfies_c1, satisfies_c2
from repro.datalog.cqa_program import split_query
from repro.db.repairs import count_repairs
from repro.solvers.brute_force import certain_answer_brute_force
from repro.solvers.nl_solver import certain_answer_nl
from repro.workloads.generators import planted_instance, random_instance


def all_words(alphabet: str, max_length: int):
    for n in range(1, max_length + 1):
        for combo in itertools.product(alphabet, repeat=n):
            yield "".join(combo)


#: C2 \ C1 words: infinite minimal-prefix language, split expected.
#: (C1 words have NFAmin = {q}: no head (cycle)* tail shape exists, and
#: none is needed -- the FO solver owns them.)
C2_WORDS = [
    q for q in all_words("RX", 6) if satisfies_c2(q) and not satisfies_c1(q)
]
NON_C2_WORDS = [q for q in all_words("RX", 6) if not satisfies_c2(q)]

#: Mid-pump queries: the split's tail overlaps the cycle's alphabet.
MIDPUMP_WORDS = ["RRXR", "RXRR", "XRXX", "XXRX", "RXRSX"]


class TestCoverage:
    def test_every_short_c2_word_has_split(self):
        missing = [q for q in C2_WORDS if split_query(q) is None]
        assert missing == []

    def test_no_split_beyond_c2(self):
        for q in NON_C2_WORDS:
            assert split_query(q) is None

    def test_split_reconstructs_query(self):
        for q in C2_WORDS:
            parts = split_query(q)
            assert str(parts.head) + str(parts.tail) == q

    def test_arrx_rejected_despite_language_shape(self):
        """ARRX has the single-pump language ARR(R)*X but violates C3;
        the split must be refused (the NL semantics would be unsound)."""
        assert split_query("ARRX") is None

    def test_midpump_examples_supported(self):
        for q in MIDPUMP_WORDS:
            parts = split_query(q)
            assert parts is not None
            assert set(parts.tail.alphabet()) & set(parts.cycle.alphabet())


class TestMidpumpDifferential:
    @pytest.mark.parametrize("q", MIDPUMP_WORDS)
    def test_against_brute_force(self, q, rng):
        checked = 0
        for trial in range(30):
            if trial % 2:
                db = random_instance(
                    rng, rng.randint(2, 5), rng.randint(3, 12),
                    sorted(set(q)), 0.6,
                )
            else:
                db = planted_instance(
                    rng, q, rng.randint(2, 5), n_paths=1,
                    n_noise_facts=rng.randint(0, 8), conflict_rate=0.6,
                )
            if count_repairs(db) > 4000:
                continue
            checked += 1
            expected = certain_answer_brute_force(db, q).answer
            assert certain_answer_nl(db, q).answer == expected
        assert checked > 10


class TestExhaustiveSweepDifferential:
    def test_all_short_c2_words_sampled(self):
        """One planted + one random instance per short C2 word."""
        rng = random.Random(20210620)
        for q in C2_WORDS:
            for kind in ("planted", "random"):
                if kind == "planted":
                    db = planted_instance(
                        rng, q, 4, n_paths=1, n_noise_facts=5,
                        conflict_rate=0.6,
                    )
                else:
                    db = random_instance(rng, 4, 9, sorted(set(q)), 0.6)
                if count_repairs(db) > 4000:
                    continue
                expected = certain_answer_brute_force(db, q).answer
                assert certain_answer_nl(db, q).answer == expected, q
