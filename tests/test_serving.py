"""The sharded async serving layer: routing, workers, transports, server, CLI.

Worker- and server-semantics tests are parametrized over both shard
transports (``thread`` and ``process``): the transport seam promises
identical observable behavior -- routing, read-your-writes ordering,
coalescing, error propagation -- regardless of where the shard's engine
lives.  Transport-specific behavior (crash-restart recovery, journal
replay, certificate rehydration, health counters) is covered separately.
"""

import asyncio

import pytest

from repro.cli import main, parse_workload
from repro.db.delta import Delta
from repro.db.instance import DatabaseInstance
from repro.engine import CertaintyEngine
from repro.serving import (
    AsyncCertaintyServer,
    ProcessTransport,
    ServerClosed,
    ShardRequest,
    ShardRouter,
    ShardWorker,
    ThreadTransport,
    make_transport,
    stable_shard,
)
from repro.workloads.generators import chain_instance

MIXED = ["RXRX", "RRX", "RXRYRY", "ARRX"]  # FO, NL, PTIME, coNP

TRANSPORTS = ["thread", "process"]


def _toy(extra=()):
    return DatabaseInstance.from_triples(
        [("R", 0, 1), ("R", 1, 2), ("X", 2, 3), *extra]
    )


@pytest.fixture(params=TRANSPORTS)
def transport(request):
    return request.param


@pytest.fixture
def worker(transport):
    worker = ShardWorker(0, transport=transport)
    yield worker
    worker.stop()


class TestShardRouter:
    def test_hash_placement_is_deterministic(self):
        first = ShardRouter(num_shards=8)
        second = ShardRouter(num_shards=8)
        for name in ("orders", "users", "events"):
            assert first.register(name) == second.register(name)
            assert first.shard_of(name) == stable_shard(name, 8)

    def test_explicit_placement_wins_and_sticks(self):
        router = ShardRouter(num_shards=4, placement={"hot": 3})
        assert router.shard_of("hot") == 3
        assert router.register("hot") == 3  # re-register keeps the pin
        with pytest.raises(ValueError):
            router.register("hot", shard=1)  # conflicting move refused

    def test_shard_out_of_range_rejected(self):
        router = ShardRouter(num_shards=2)
        with pytest.raises(ValueError):
            router.register("x", shard=2)
        with pytest.raises(ValueError):
            ShardRouter(num_shards=0)

    def test_unregistered_and_instance_routing(self):
        router = ShardRouter(num_shards=4)
        assert router.shard_of("never-registered") in range(4)
        assert router.shard_of(_toy()) in range(4)

    def test_assignments_copy(self):
        router = ShardRouter(num_shards=2, placement={"a": 1})
        assignments = router.assignments()
        assignments["a"] = 0
        assert router.shard_of("a") == 1


class TestMakeTransport:
    def test_names_resolve(self):
        assert isinstance(make_transport("thread", 0), ThreadTransport)
        process = make_transport("process", 0)
        assert isinstance(process, ProcessTransport)
        process.stop()  # never started: a no-op

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            make_transport("carrier-pigeon", 0)
        with pytest.raises(ValueError):
            ShardWorker(0, transport="carrier-pigeon")

    def test_instance_and_factory_pass_through(self):
        ready = ThreadTransport(7)
        assert make_transport(ready, 7) is ready
        built = make_transport(ThreadTransport, 3)
        assert isinstance(built, ThreadTransport)
        assert built.shard_id == 3


class TestShardWorker:
    """Drive execute() directly -- deterministic, no drain thread.

    Every test runs against both transports: execute() is a synchronous
    round trip either way (in-thread core, or one pipe message pair).
    """

    def test_register_solve_and_warm_state(self, worker):
        register = ShardRequest("register", name="toy", db=_toy())
        first = ShardRequest("solve", name="toy", query="RRX")
        second = ShardRequest("solve", name="toy", query="RRX")
        worker.execute([register])
        worker.execute([first])
        worker.execute([second])
        assert first.result.answer is True
        assert second.result.answer is True
        stats = worker.stats()
        assert stats["cold_solves"] == 1
        assert stats["warm_hits"] == 1
        assert stats["engine"]["delta_solves"] == 2

    def test_duplicate_reads_coalesce_within_batch(self, worker):
        worker.execute([ShardRequest("register", name="toy", db=_toy())])
        requests = [
            ShardRequest("solve", name="toy", query="RRX") for _ in range(5)
        ]
        worker.execute(requests)
        assert all(r.result.answer is True for r in requests)
        assert worker.coalesced == 4  # one engine call served five futures
        # Identity survives both transports: the in-thread core returns
        # the same object, and one pickled reply shares it via the memo.
        assert requests[0].result is requests[4].result

    def test_delta_invalidates_coalesced_read(self, worker):
        worker.execute([ShardRequest("register", name="toy", db=_toy())])
        before = ShardRequest("solve", name="toy", query="RRX")
        delta = ShardRequest(
            "delta",
            name="toy",
            delta=Delta.removing(("X", 2, 3)),
            query="RRX",
        )
        after = ShardRequest("solve", name="toy", query="RRX")
        worker.execute([before, delta, after])
        assert before.result.answer is True
        assert delta.result.answer is False
        assert after.result.answer is False  # not served from the memo

    def test_delta_advances_registry_to_committed_instance(self, worker):
        worker.execute([ShardRequest("register", name="toy", db=_toy())])
        delta = ShardRequest(
            "delta",
            name="toy",
            delta=Delta.inserting(("R", 5, 6)),
            query="RRX",
        )
        got = ShardRequest("get", name="toy")
        worker.execute([delta])
        worker.execute([got])
        assert ("R", 5, 6) in {
            (f.relation, f.key, f.value) for f in got.result.facts
        }

    def test_unknown_name_fails_request(self, worker):
        request = ShardRequest("solve", name="ghost", query="RRX")
        worker.execute([request])
        assert isinstance(request.error, KeyError)
        assert worker.errors == 1

    def test_forced_method_bypasses_warm_path(self, worker):
        worker.execute([ShardRequest("register", name="toy", db=_toy())])
        forced = ShardRequest("solve", name="toy", query="RRX", method="sat")
        worker.execute([forced])
        assert forced.result.method == "sat"
        assert worker.stats()["engine"]["delta_solves"] == 0

    def test_no_answer_certificate_survives_the_transport(self, worker):
        """A lazy "no" certificate reaches the caller on both transports.

        The process transport strips it on the wire and rehydrates from
        the router-side journal; the construction is deterministic in
        the facts, so the repair matches the in-process one exactly.
        """
        worker.execute([ShardRequest("register", name="toy", db=_toy())])
        request = ShardRequest(
            "delta",
            name="toy",
            delta=Delta.removing(("X", 2, 3)),
            query="RRX",
        )
        worker.execute([request])
        result = request.result
        assert result.answer is False
        assert result.has_lazy_repair  # not resolved by the hop
        updated = Delta.removing(("X", 2, 3)).apply_to(_toy()).commit()
        repair = result.falsifying_repair
        assert repair.is_repair_of(updated)
        reference = CertaintyEngine().solve(updated, "RRX")
        assert repair == reference.falsifying_repair

    def test_close_fails_queued_and_late_requests(self, worker):
        """Graceful shutdown: still-queued futures fail with ServerClosed."""
        queued = ShardRequest("solve", name="toy", query="RRX")
        worker.submit(queued)  # no thread running: stays queued
        worker.stop()
        assert isinstance(queued.error, ServerClosed)
        late = ShardRequest("solve", name="toy", query="RRX")
        worker.submit(late)
        assert isinstance(late.error, ServerClosed)

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            ShardWorker(0, max_batch=0)
        with pytest.raises(ValueError):
            ShardWorker(0, max_delay=-1.0)


class TestProcessTransportRecovery:
    """Crash-restart: the child dies, the journal replays, answers hold."""

    def test_worker_crash_restart_preserves_residents_and_deltas(self):
        worker = ShardWorker(0, transport="process")
        try:
            worker.execute([ShardRequest("register", name="toy", db=_toy())])
            delta = ShardRequest(
                "delta",
                name="toy",
                delta=Delta.removing(("X", 2, 3)),
                query="RRX",
            )
            worker.execute([delta])
            assert delta.result.answer is False
            worker.transport.process.kill()
            after = ShardRequest("solve", name="toy", query="RRX")
            got = ShardRequest("get", name="toy")
            worker.execute([after, got])
            # The replayed resident is the *post-delta* instance: the
            # journal compacts every forwarded delta into the snapshot.
            assert after.result.answer is False
            assert got.result == Delta.removing(("X", 2, 3)).apply_to(
                _toy()
            ).commit()
            health = worker.stats()["transport"]
            assert health["restarts"] == 1
            assert health["alive"] is True
        finally:
            worker.stop()

    def test_server_crash_restart_answers_unchanged(self):
        instances = {
            "chain{}".format(i): chain_instance(
                q, repetitions=3, conflict_every=3
            )
            for i, q in enumerate(MIXED)
        }
        reference = CertaintyEngine()
        expected = {
            (name, query): reference.solve(instances[name], query).answer
            for name in sorted(instances)
            for query in MIXED
        }

        async def scenario():
            async with AsyncCertaintyServer(
                num_shards=2, transport="process"
            ) as server:
                for name, db in sorted(instances.items()):
                    await server.register(name, db)
                requests = list(expected)
                before = await server.solve_many(requests)
                for worker in server.workers:
                    worker.transport.process.kill()
                after = await server.solve_many(requests)
                return requests, before, after, server.stats()

        requests, before, after, stats = asyncio.run(scenario())
        for (name, query), cold, warm in zip(requests, before, after):
            assert cold.answer == expected[(name, query)], (name, query)
            assert warm.answer == expected[(name, query)], (name, query)
        # A killed child restarts lazily, on the next batch that reaches
        # it -- so exactly the shards that hold residents restart.
        serving_shards = set(stats["placement"].values())
        for shard_stats in stats["shards"]:
            expected = 1 if shard_stats["shard"] in serving_shards else 0
            assert shard_stats["transport"]["restarts"] == expected
        # Counters stay monotone across the restart: both passes counted.
        assert sum(s["requests"] for s in stats["shards"]) >= 2 * len(requests)

    def test_transport_health_counters(self):
        worker = ShardWorker(0, transport="process")
        try:
            worker.execute([ShardRequest("register", name="toy", db=_toy())])
            worker.execute(
                [
                    ShardRequest(
                        "delta",
                        name="toy",
                        delta=Delta.inserting(("X", 2, 9)),
                        query="RRX",
                    )
                ]
            )
            health = worker.stats()["transport"]
            assert health["transport"] == "process"
            assert health["alive"] is True
            assert health["restarts"] == 0
            assert health["snapshot_bytes"] > 0  # one facts-only snapshot
            assert health["deltas_forwarded"] == 1
            assert health["queue_depth"] == 0
        finally:
            worker.stop()

    def test_unpicklable_instance_fails_request_not_the_worker(self):
        """A payload the pipe cannot carry fails *that* future; the
        drain thread and the shard survive for later traffic."""
        bad = DatabaseInstance.from_triples([("R", (lambda: None), 1)])

        async def scenario():
            async with AsyncCertaintyServer(
                num_shards=1, transport="process"
            ) as server:
                with pytest.raises(Exception):
                    await server.register("bad", bad)  # unpicklable facts
                await server.register("ok", _toy())
                return (await server.solve("ok", "RRX")).answer

        assert asyncio.run(scenario()) is True

    def test_thread_health_is_trivial(self):
        worker = ShardWorker(0, transport="thread")
        health = worker.stats()["transport"]
        assert health["transport"] == "thread"
        assert health["snapshot_bytes"] == 0
        assert health["deltas_forwarded"] == 0
        worker.stop()


class TestAsyncCertaintyServer:
    def test_answers_match_engine_across_classes(self, transport):
        reference = CertaintyEngine()
        instances = {
            "chain{}".format(i): chain_instance(q, repetitions=3, conflict_every=3)
            for i, q in enumerate(MIXED)
        }

        async def scenario():
            async with AsyncCertaintyServer(
                num_shards=3, transport=transport
            ) as server:
                for name, db in sorted(instances.items()):
                    await server.register(name, db)
                requests = [
                    (name, query)
                    for name in sorted(instances)
                    for query in MIXED
                ]
                # Twice: the second pass is served fully shard-warm.
                cold = await server.solve_many(requests)
                warm = await server.solve_many(requests)
                return requests, cold, warm, server.stats()

        requests, cold, warm, stats = asyncio.run(scenario())
        for (name, query), cold_r, warm_r in zip(requests, cold, warm):
            expected = reference.solve(instances[name], query).answer
            assert cold_r.answer == expected, (name, query)
            assert warm_r.answer == expected, (name, query)
        assert stats["admission"]["failed"] == 0
        assert stats["admission"]["in_flight"] == 0
        assert sum(s["warm_hits"] for s in stats["shards"]) > 0

    def test_read_your_writes_per_instance(self, transport):
        async def scenario():
            async with AsyncCertaintyServer(
                num_shards=2, transport=transport
            ) as server:
                await server.register("toy", _toy())
                answers = [(await server.solve("toy", "RRX")).answer]
                result = await server.solve_delta(
                    "toy", Delta.removing(("X", 2, 3)), "RRX"
                )
                answers.append(result.answer)
                answers.append((await server.solve("toy", "RRX")).answer)
                result = await server.solve_delta(
                    "toy", Delta.inserting(("X", 2, 9)), "RRX"
                )
                answers.append(result.answer)
                answers.append((await server.solve("toy", "RRX")).answer)
                db = await server.get_instance("toy")
                return answers, db

        answers, db = asyncio.run(scenario())
        assert answers == [True, False, False, True, True]
        # The registry advanced to the twice-updated instance.
        assert db == Delta.removing(("X", 2, 3)).then_inserting(
            ("X", 2, 9)
        ).apply_to(_toy()).commit()

    def test_adhoc_instance_passthrough(self, transport):
        async def scenario():
            async with AsyncCertaintyServer(
                num_shards=2, transport=transport
            ) as server:
                return await server.solve(_toy(), "RRX")

        result = asyncio.run(scenario())
        assert result.answer is True

    def test_unknown_name_raises_for_awaiter(self, transport):
        async def scenario():
            async with AsyncCertaintyServer(
                num_shards=2, transport=transport
            ) as server:
                with pytest.raises(KeyError):
                    await server.solve("ghost", "RRX")
                return server.stats()

        stats = asyncio.run(scenario())
        assert stats["admission"]["failed"] == 1

    def test_lifecycle_guards(self):
        server = AsyncCertaintyServer(num_shards=1)

        async def not_started():
            with pytest.raises(RuntimeError):
                await server.solve("toy", "RRX")

        asyncio.run(not_started())
        server.start()
        server.close()
        server.close()  # idempotent
        with pytest.raises(ServerClosed):
            server.start()  # a closed server cannot be restarted

    def test_close_fails_pending_requests(self, transport):
        """The graceful-shutdown contract at the asyncio surface:
        requests still queued when close() runs fail with ServerClosed
        instead of leaving their futures pending forever."""

        async def scenario():
            server = AsyncCertaintyServer(
                num_shards=1,
                transport=transport,
                max_batch=64,
                max_delay=5.0,  # long coalescing window: requests queue up
            )
            server.start()
            tasks = [
                asyncio.ensure_future(server.solve("toy", "RRX"))
                for _ in range(3)
            ]
            await asyncio.sleep(0.05)  # let them reach the shard queue
            server.close()
            settled = await asyncio.gather(*tasks, return_exceptions=True)
            with pytest.raises(ServerClosed):
                await server.solve("toy", "RRX")  # admission after close
            return settled, server.stats()

        settled, stats = asyncio.run(scenario())
        assert all(isinstance(error, ServerClosed) for error in settled)
        assert stats["admission"]["failed"] == 3
        assert stats["admission"]["in_flight"] == 0

    def test_explicit_placement_routes_to_that_shard(self, transport):
        async def scenario():
            async with AsyncCertaintyServer(
                num_shards=3, transport=transport
            ) as server:
                shard = await server.register("pinned", _toy(), shard=2)
                await server.solve("pinned", "RRX")
                return shard, server.stats()

        shard, stats = asyncio.run(scenario())
        assert shard == 2
        assert stats["placement"]["pinned"] == 2
        assert stats["shards"][2]["requests"] == 2  # register + solve
        assert stats["shards"][0]["requests"] == 0

    def test_concurrent_burst_is_batched(self, transport):
        async def scenario():
            async with AsyncCertaintyServer(
                num_shards=1,
                max_batch=64,
                max_delay=0.05,
                transport=transport,
            ) as server:
                await server.register("toy", _toy())
                await server.solve("toy", "RRX")  # warm the state
                burst = await asyncio.gather(
                    *(server.solve("toy", "RRX") for _ in range(32))
                )
                return burst, server.stats()["shards"][0]

        burst, shard = asyncio.run(scenario())
        assert all(r.answer is True for r in burst)
        # The burst was admitted concurrently, so at least one drain
        # served multiple requests in a single micro-batch.
        assert shard["max_batch_size"] > 1


class TestServeCli:
    def _write_instance(self, tmp_path, name, lines):
        path = tmp_path / "{}.txt".format(name)
        path.write_text("\n".join(lines) + "\n")
        return str(path)

    @pytest.mark.parametrize("cli_transport", TRANSPORTS)
    def test_serve_workload_end_to_end(self, tmp_path, capsys, cli_transport):
        db_a = self._write_instance(
            tmp_path, "a", ["R,0,1", "R,1,2", "X,2,3"]
        )
        workload = tmp_path / "workload.txt"
        workload.write_text(
            "# demo\n"
            "solve a RRX\n"
            "delta a RRX -X,2,3\n"
            "solve a RRX\n"
        )
        code = main(
            [
                "serve",
                "--instance",
                "a={}".format(db_a),
                "--workload",
                str(workload),
                "--transport",
                cli_transport,
                "--stats",
            ]
        )
        out = capsys.readouterr().out
        assert code == 1  # last answers are "not certain"
        assert "not certain" in out
        assert "admission: submitted=4 completed=4 failed=0" in out
        assert "warm=" in out
        assert "transport={}".format(cli_transport) in out
        assert "restarts=0" in out and "queue_depth=" in out
        if cli_transport == "process":
            assert "deltas_forwarded=1" in out

    def test_serve_sqlite_journal_survives_reruns(self, tmp_path, capsys):
        """Run 2 serves no ``--instance``: residents come from the log."""
        db_a = self._write_instance(
            tmp_path, "a", ["R,0,1", "R,1,2", "X,2,3"]
        )
        workload_first = tmp_path / "first.txt"
        workload_first.write_text("solve a RRX\ndelta a RRX -X,2,3\n")
        workload_second = tmp_path / "second.txt"
        workload_second.write_text("solve a RRX\n")
        journal = "sqlite:{}".format(tmp_path / "journal.db")

        code = main(
            [
                "serve",
                "--instance",
                "a={}".format(db_a),
                "--workload",
                str(workload_first),
                "--journal",
                journal,
                "--stats",
            ]
        )
        out = capsys.readouterr().out
        assert code == 1  # the delta removed X: "not certain"
        assert "journal: store=sqlite" in out

        code = main(
            [
                "serve",
                "--workload",
                str(workload_second),
                "--journal",
                journal,
                "--stats",
            ]
        )
        out = capsys.readouterr().out
        assert code == 1  # post-delta state survived the restart
        assert "not certain" in out
        assert "journal: store=sqlite residents=1" in out

    def test_serve_reports_per_request_errors(self, tmp_path, capsys):
        """A failing workload line is reported in its row, not a traceback."""
        db_a = self._write_instance(
            tmp_path, "a", ["R,0,1", "R,1,2", "X,2,3"]
        )
        workload = tmp_path / "workload.txt"
        workload.write_text(
            "solve a RRX\n"
            "solve ghost RRX\n"      # unregistered name
            "delta a RRX +\n"        # malformed edit
            "solve a RRX\n"
        )
        code = main(
            [
                "serve",
                "--instance",
                "a={}".format(db_a),
                "--workload",
                str(workload),
            ]
        )
        out = capsys.readouterr().out
        assert code == 2
        assert out.count("error") == 2
        assert "KeyError" in out and "ValueError" in out
        assert out.count("certain") >= 2  # healthy rows still served

    def test_serve_rejects_bad_instance_spec(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["serve", "--instance", "nofile", "--workload", "x"])

    def test_parse_workload_rejects_garbage(self):
        with pytest.raises(SystemExit):
            parse_workload(["solve onlytwo"])
        assert parse_workload(["", "# comment", "solve a RRX"]) == [
            ("solve", "a", "RRX", None)
        ]

    def test_bench_serve_cli_smoke(self, capsys):
        code = main(
            [
                "bench-serve",
                "--instances",
                "2",
                "--repetitions",
                "3",
                "--requests",
                "12",
                "--shards",
                "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "speedup:" in out
        assert "answers agree: True" in out

    def test_bench_serve_cpu_bound_cli_smoke(self, capsys):
        code = main(
            [
                "bench-serve",
                "--cpu-bound",
                "--shards",
                "2",
                "--repetitions",
                "50",
                "--requests",
                "8",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "process/thread speedup:" in out
        assert "answers agree: True" in out
