"""Tests for the generic NFA with ε-moves."""

import pytest

from repro.automata.nfa import NFA


def simple_nfa():
    """Accepts a(b)*c, with an ε shortcut from 1 to 2."""
    return NFA(
        states=[0, 1, 2],
        alphabet=["a", "b", "c"],
        transitions={(0, "a"): {1}, (1, "b"): {1}, (2, "c"): {2}},
        epsilon={1: {2}},
        initial=0,
        accepting=[2],
    )


class TestValidation:
    def test_unknown_initial_rejected(self):
        with pytest.raises(ValueError):
            NFA([0], ["a"], {}, {}, 1, [0])

    def test_unknown_accepting_rejected(self):
        with pytest.raises(ValueError):
            NFA([0], ["a"], {}, {}, 0, [5])

    def test_unknown_transition_symbol_rejected(self):
        with pytest.raises(ValueError):
            NFA([0], ["a"], {(0, "z"): {0}}, {}, 0, [0])

    def test_unknown_epsilon_target_rejected(self):
        with pytest.raises(ValueError):
            NFA([0], ["a"], {}, {0: {7}}, 0, [0])


class TestSemantics:
    def test_epsilon_closure(self):
        nfa = simple_nfa()
        assert nfa.epsilon_closure(1) == frozenset({1, 2})
        assert nfa.epsilon_closure(0) == frozenset({0})

    def test_transitive_epsilon_closure(self):
        nfa = NFA([0, 1, 2], ["a"], {}, {0: {1}, 1: {2}}, 0, [2])
        assert nfa.epsilon_closure(0) == frozenset({0, 1, 2})
        assert nfa.accepts([])

    def test_accepts(self):
        nfa = simple_nfa()
        assert nfa.accepts("a")        # a then ε to accepting
        assert nfa.accepts("abbc")
        assert nfa.accepts("ac")
        assert not nfa.accepts("b")
        assert not nfa.accepts("")

    def test_accepts_from(self):
        nfa = simple_nfa()
        assert nfa.accepts_from(1, "")
        assert nfa.accepts_from(1, "bb")
        assert not nfa.accepts_from(0, "")

    def test_with_initial(self):
        nfa = simple_nfa().with_initial(1)
        assert nfa.accepts("")
        assert nfa.accepts("bc")

    def test_is_empty(self):
        nfa = simple_nfa()
        assert not nfa.is_empty()
        dead = NFA([0, 1], ["a"], {}, {}, 0, [1])
        assert dead.is_empty()

    def test_step(self):
        nfa = simple_nfa()
        assert nfa.step(frozenset({0}), "a") == frozenset({1, 2})
