"""End-to-end validation of the Section 7 hardness reductions."""

import pytest

from repro.circuits.circuit import (
    Gate,
    MonotoneCircuit,
    random_assignment,
    random_monotone_circuit,
)
from repro.cnf.formula import Clause, CnfFormula, random_ksat
from repro.db.repairs import count_repairs
from repro.graphs.digraph import DiGraph, has_directed_path
from repro.graphs.generators import random_dag
from repro.reductions.gadgets import FreshConstants, phi
from repro.reductions.mcvp import mcvp_reduction
from repro.reductions.reachability import reachability_reduction
from repro.reductions.sat_reduction import sat_reduction
from repro.solvers.brute_force import certain_answer_brute_force
from repro.solvers.certainty import certain_answer


class TestGadgets:
    def test_phi_shape(self):
        fresh = FreshConstants()
        facts = phi("RSX", "a", "b", fresh)
        assert len(facts) == 3
        assert facts[0].key == "a"
        assert facts[-1].value == "b"
        assert facts[0].value == facts[1].key

    def test_phi_fresh_ends(self):
        fresh = FreshConstants()
        facts = phi("R", None, None, fresh)
        assert facts[0].key != facts[0].value
        assert fresh.issued == 2

    def test_phi_empty_word(self):
        assert phi("", "a", "b", FreshConstants()) == []

    def test_gadgets_do_not_share_fresh_constants(self):
        fresh = FreshConstants()
        a = phi("RS", "x", None, fresh)
        b = phi("RS", "x", None, fresh)
        internal_a = {a[0].value}
        internal_b = {b[0].value}
        assert internal_a.isdisjoint(internal_b)


class TestReachabilityReduction:
    def test_rejects_c1_query(self):
        graph = DiGraph(edges=[(0, 1)])
        with pytest.raises(ValueError):
            reachability_reduction("RXRX", graph, 0, 1)

    def test_rejects_cyclic_graph(self):
        graph = DiGraph(edges=[(0, 1), (1, 0)])
        with pytest.raises(ValueError):
            reachability_reduction("RRX", graph, 0, 1)

    def test_figure8_example(self):
        """The Figure 8 graph: V = {s, a, t}, E = {(s,a), (a,t)}."""
        graph = DiGraph(edges=[("s", "a"), ("a", "t")])
        red = reachability_reduction("RRX", graph, "s", "t")
        # Reachable, so certainty must be False.
        assert not certain_answer_brute_force(
            red.instance, "RRX", repair_limit=None
        ).answer

    @pytest.mark.parametrize("q", ["RRX", "RXRY", "RXRYRY"])
    def test_random_dags(self, q, rng):
        """Reachability(G) == not CERTAINTY on the reduced instance."""
        for _ in range(12):
            graph = random_dag(rng.randint(3, 5), 0.4, rng)
            source, target = 0, len(graph) - 1
            red = reachability_reduction(q, graph, source, target)
            if count_repairs(red.instance) > 100_000:
                continue
            reachable = has_directed_path(graph, source, target)
            truth = certain_answer_brute_force(
                red.instance, q, repair_limit=None
            ).answer
            assert truth == red.expected_certainty(reachable)
            # The polynomial solver agrees (all three queries satisfy C2/C3).
            assert certain_answer(red.instance, q).answer == truth


class TestSatReduction:
    def test_rejects_c3_query(self):
        formula = CnfFormula([Clause((("x1", True),))])
        with pytest.raises(ValueError):
            sat_reduction("RRX", formula)

    def test_figure9_example(self):
        """ψ = (x1 ∨ ¬x2) ∧ (¬x2 ∨ x3) is satisfiable -> not certain."""
        formula = CnfFormula(
            [
                Clause((("x1", True), ("x2", False))),
                Clause((("x2", False), ("x3", True))),
            ]
        )
        red = sat_reduction("ARRX", formula)
        assert not certain_answer_brute_force(
            red.instance, "ARRX", repair_limit=None
        ).answer

    def test_unsatisfiable_formula_gives_yes(self):
        formula = CnfFormula(
            [
                Clause((("x1", True),)),
                Clause((("x1", False),)),
            ]
        )
        red = sat_reduction("ARRX", formula)
        assert certain_answer_brute_force(
            red.instance, "ARRX", repair_limit=None
        ).answer

    @pytest.mark.parametrize("q", ["ARRX", "RXRXRYRY"])
    def test_random_formulas(self, q, rng):
        for _ in range(10):
            formula = random_ksat(rng.randint(2, 4), rng.randint(1, 5), 2, rng)
            red = sat_reduction(q, formula)
            if count_repairs(red.instance) > 100_000:
                continue
            truth = certain_answer_brute_force(
                red.instance, q, repair_limit=None
            ).answer
            assert truth == red.expected_certainty(formula.is_satisfiable())
            # The SAT-based solver agrees with brute force.
            assert certain_answer(red.instance, q).answer == truth


class TestMcvpReduction:
    def test_rejects_c2_query(self):
        circuit = MonotoneCircuit(["x1", "x2"], [Gate("g1", "and", "x1", "x2")], "g1")
        with pytest.raises(ValueError):
            mcvp_reduction("RRX", circuit, {"x1": True, "x2": True})

    def test_rejects_non_c3_query(self):
        circuit = MonotoneCircuit(["x1", "x2"], [Gate("g1", "and", "x1", "x2")], "g1")
        with pytest.raises(ValueError):
            mcvp_reduction("ARRX", circuit, {"x1": True})

    def test_single_gates(self):
        for op, inputs, expected in [
            ("and", {"x1": True, "x2": True}, True),
            ("and", {"x1": True, "x2": False}, False),
            ("or", {"x1": False, "x2": True}, True),
            ("or", {"x1": False, "x2": False}, False),
        ]:
            circuit = MonotoneCircuit(
                ["x1", "x2"], [Gate("g1", op, "x1", "x2")], "g1"
            )
            red = mcvp_reduction("RXRYRY", circuit, inputs)
            truth = certain_answer_brute_force(
                red.instance, "RXRYRY", repair_limit=None
            ).answer
            assert truth == expected

    @pytest.mark.parametrize("q", ["RXRYRY", "RXRRR"])
    def test_random_circuits(self, q, rng):
        for _ in range(10):
            circuit = random_monotone_circuit(rng.randint(2, 3), rng.randint(1, 3), rng)
            assignment = random_assignment(circuit.inputs, rng)
            red = mcvp_reduction(q, circuit, assignment)
            if count_repairs(red.instance) > 150_000:
                continue
            truth = certain_answer_brute_force(
                red.instance, q, repair_limit=None
            ).answer
            assert truth == red.expected_certainty(circuit.value(assignment))
            # The fixpoint solver agrees (both queries satisfy C3).
            assert certain_answer(red.instance, q).answer == truth
