"""The resilience layer, piece by piece.

Unit-level coverage of the PR's moving parts -- the restart policy and
circuit breaker state machine (with an injected clock, no sleeping), the
seeded fault-plan grammar and its determinism, bounded-queue admission,
deadline shedding at every layer it happens (server admission, batch
assembly, mid-batch in the core), the drain-loop monotonic floor, and
the escalating process-transport shutdown.  The end-to-end chaos
schedules live in ``tests/test_chaos.py``.
"""

import asyncio
import os
import signal
import time

import pytest

from repro.db.delta import Delta
from repro.db.instance import DatabaseInstance
from repro.serving import (
    AsyncCertaintyServer,
    CircuitBreaker,
    DeadlineExceeded,
    FaultPlan,
    FaultRule,
    RestartPolicy,
    ServerOverloaded,
    ShardRequest,
    ShardWorker,
    make_fault_plan,
)
from repro.serving.shard import ShardCore
from repro.serving.transport import merge_snapshots


def _toy() -> DatabaseInstance:
    return DatabaseInstance.from_triples(
        [("R", 0, 1), ("R", 1, 2), ("X", 2, 3)]
    )


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestRestartPolicy:
    def test_backoff_is_exponential_and_capped(self):
        policy = RestartPolicy(
            backoff_base=0.5, backoff_factor=2.0, backoff_max=3.0, jitter=0.0
        )
        assert policy.backoff(1) == 0.5
        assert policy.backoff(2) == 1.0
        assert policy.backoff(3) == 2.0
        assert policy.backoff(4) == 3.0  # capped
        assert policy.backoff(0) == 0.0

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RestartPolicy(backoff_base=1.0, jitter=0.25, seed=42)
        twin = RestartPolicy(backoff_base=1.0, jitter=0.25, seed=42)
        for attempt in range(1, 5):
            for shard in range(3):
                delay = policy.backoff(attempt, shard)
                assert delay == twin.backoff(attempt, shard)
                base = min(5.0, 1.0 * 2.0 ** (attempt - 1))
                assert base <= delay <= base * 1.25
        # A different seed gives a different schedule somewhere.
        other = RestartPolicy(backoff_base=1.0, jitter=0.25, seed=43)
        assert any(
            other.backoff(k) != policy.backoff(k) for k in range(1, 8)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            RestartPolicy(max_restarts=-1)
        with pytest.raises(ValueError):
            RestartPolicy(window=0)
        with pytest.raises(ValueError):
            RestartPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RestartPolicy(jitter=1.5)


class TestCircuitBreaker:
    def test_rolling_window_budget(self):
        clock = FakeClock()
        policy = RestartPolicy(max_restarts=2, window=10.0, clock=clock)
        breaker = CircuitBreaker(policy)
        assert breaker.allow_restart()
        breaker.record_restart()
        clock.advance(1.0)
        breaker.record_restart()
        assert not breaker.allow_restart()  # 2 attempts inside the window
        clock.advance(9.5)  # first attempt (t=0) ages out of [t-10, t]
        assert breaker.allow_restart()
        assert breaker.restarts_in_window() == 1

    def test_trip_open_halfopen_close_cycle(self):
        clock = FakeClock()
        policy = RestartPolicy(
            max_restarts=1,
            window=100.0,
            backoff_base=2.0,
            jitter=0.0,
            clock=clock,
        )
        breaker = CircuitBreaker(policy)
        assert breaker.state == "closed"
        breaker.record_failure()
        breaker.trip()
        assert breaker.state == "open"
        assert breaker.trips == 1
        clock.advance(1.9)
        assert breaker.state == "open"  # cooldown = backoff(1) = 2.0
        clock.advance(0.1)
        assert breaker.state == "half_open"
        breaker.record_success()  # the probe served
        assert breaker.state == "closed"
        assert breaker.consecutive_failures == 0

    def test_reopen_backs_off_longer(self):
        clock = FakeClock()
        policy = RestartPolicy(
            backoff_base=1.0, backoff_factor=2.0, jitter=0.0, clock=clock
        )
        breaker = CircuitBreaker(policy)
        breaker.record_failure()
        breaker.trip()
        clock.advance(1.0)
        assert breaker.state == "half_open"
        breaker.record_failure()  # the probe died too
        breaker.trip()
        clock.advance(1.0)
        assert breaker.state == "open"  # cooldown doubled to 2.0
        clock.advance(1.0)
        assert breaker.state == "half_open"

    def test_snapshot_is_plain_data(self):
        breaker = CircuitBreaker()
        assert breaker.snapshot() == {
            "state": "closed",
            "consecutive_failures": 0,
            "trips": 0,
            "restarts_in_window": 0,
        }


class TestFaultPlan:
    def test_parse_grammar(self):
        plan = FaultPlan.parse(
            "seed=9; crash:op=delta,times=1 ;"
            "delay:seconds=0.25,every=3,shard=1; dup:batch=4; drop:p=0.5"
        )
        assert plan.seed == 9
        kinds = [rule.kind for rule in plan.rules]
        assert kinds == ["crash", "delay", "dup", "drop"]
        delay = plan.rules[1]
        assert delay.seconds == 0.25
        assert delay.every == 3
        assert delay.shard == 1
        assert plan.rules[3].p == 0.5
        assert "delay,shard=1,every=3,seconds=0.25" in plan.describe()["rules"]

    def test_parse_rejections(self):
        with pytest.raises(ValueError):
            FaultRule.parse("meteor")
        with pytest.raises(ValueError):
            FaultRule.parse("crash:when=now")
        with pytest.raises(ValueError):
            FaultRule.parse("crash:p=2.0")
        with pytest.raises(ValueError):
            FaultRule.parse("delay:seconds=-1")
        with pytest.raises(ValueError):
            FaultRule.parse("crash:every")

    def test_every_and_times_and_op(self):
        plan = FaultPlan.parse("crash:every=2,times=2;delay:op=solve")
        fired = []
        for batch in range(6):
            ops = ["solve"] if batch % 2 == 0 else ["delta"]
            fired.append(sorted(a.kind for a in plan.draw(0, ops)))
        # every=2 fires on batches 1, 3 (then its times=2 budget is out);
        # op=solve fires on the even batches.
        assert fired == [
            ["delay"], ["crash"], ["delay"], ["crash"], ["delay"], [],
        ]
        assert plan.describe()["injected"] == {"crash": 2, "delay": 3}

    def test_probabilistic_rules_replay(self):
        spec = "drop:p=0.4;seed=11"
        first = FaultPlan.parse(spec)
        second = FaultPlan.parse(spec)
        schedule = [
            [a.kind for a in first.draw(shard, ["solve"])]
            for shard in (0, 1)
            for _ in range(20)
        ]
        replay = [
            [a.kind for a in second.draw(shard, ["solve"])]
            for shard in (0, 1)
            for _ in range(20)
        ]
        assert schedule == replay
        assert any(schedule)  # p=0.4 over 40 draws fires somewhere
        assert not all(schedule)

    def test_per_shard_batch_counters(self):
        plan = FaultPlan([FaultRule("crash", batch=1)])
        assert plan.draw(0) == []
        assert [a.kind for a in plan.draw(0)] == ["crash"]
        # Shard 1 has its own counter: its batch 1 also matches.
        assert plan.draw(1) == []
        assert [a.kind for a in plan.draw(1)] == ["crash"]
        assert plan.batches_drawn(0) == plan.batches_drawn(1) == 2
        plan.reset()
        assert plan.batches_drawn(0) == 0
        assert plan.describe()["injected"] == {}

    def test_make_fault_plan_normalizes(self):
        assert make_fault_plan(None) is None
        plan = FaultPlan()
        assert make_fault_plan(plan) is plan
        assert make_fault_plan("crash:times=1").rules[0].kind == "crash"
        from_rules = make_fault_plan([FaultRule("dup")])
        assert from_rules.rules[0].kind == "dup"


class TestAdmissionControl:
    def test_worker_queue_limit_sheds(self):
        # Unstarted worker: nothing drains, so the queue depth is exact.
        worker = ShardWorker(0, queue_limit=2)
        admitted = [ShardRequest("solve", name="a", query="RRX")
                    for _ in range(2)]
        for request in admitted:
            worker.submit(request)
        third = ShardRequest("solve", name="a", query="RRX")
        worker.submit(third)
        assert isinstance(third.error, ServerOverloaded)
        assert all(r.error is None for r in admitted)
        assert worker.overload_shed == 1
        assert worker.stats()["overload_shed"] == 1
        worker.stop()

    def test_server_max_in_flight_sheds(self):
        async def scenario():
            # One shard, huge assembly delay: the first request parks in
            # batch assembly, so the rest exceed the in-flight cap.
            async with AsyncCertaintyServer(
                num_shards=1, max_delay=5.0, max_in_flight=1
            ) as server:
                await server.register("toy", _toy())
                waiters = [
                    asyncio.ensure_future(server.solve("toy", "RRX"))
                    for _ in range(4)
                ]
                done = await asyncio.gather(*waiters, return_exceptions=True)
                stats = server.stats()
                return done, stats

        done, stats = asyncio.run(scenario())
        shed = [r for r in done if isinstance(r, ServerOverloaded)]
        served = [r for r in done if not isinstance(r, BaseException)]
        assert len(shed) == 3
        assert len(served) == 1 and served[0].answer is True
        assert stats["admission"]["overload_shed"] == 3

    def test_server_validates_caps(self):
        with pytest.raises(ValueError):
            AsyncCertaintyServer(max_in_flight=0)
        with pytest.raises(ValueError):
            ShardWorker(0, queue_limit=0)


class TestDeadlines:
    def test_assembly_shed(self):
        worker = ShardWorker(0)
        expired = ShardRequest(
            "solve", name="toy", query="RRX",
            deadline=time.monotonic() - 0.01,
        )
        live = ShardRequest("solve", name="toy", query="RRX")
        worker.execute([ShardRequest("register", name="toy", db=_toy())])
        worker.execute([expired, live])
        assert isinstance(expired.error, DeadlineExceeded)
        assert live.error is None and live.result.answer is True
        assert worker.stats()["deadline_shed"] == 1
        worker.stop()

    def test_core_mid_batch_shed(self):
        # The core checks again per op: a deadline that expires while
        # earlier ops in the same batch run sheds the later ones.
        core = ShardCore(0)
        past = time.monotonic() - 1.0
        rows = core.run_batch([
            ("register", "toy", _toy(), None, None, "auto", 1, None),
            ("solve", "toy", None, None, "RRX", "auto", 0, past),
            ("solve", "toy", None, None, "RRX", "auto", 0, None),
        ])
        ok, err = rows[1]
        assert not ok and isinstance(err, DeadlineExceeded)
        assert rows[0][0] and rows[2][0]
        assert core.deadline_shed == 1
        assert core.snapshot()["deadline_shed"] == 1

    def test_delta_write_commits_before_read_shed(self):
        # Deadline semantics for writes: the committed half is never
        # rolled back -- only the read half is shed.
        core = ShardCore(0)
        core.run_batch(
            [("register", "toy", _toy(), None, None, "auto", 1, None)]
        )
        past = time.monotonic() - 1.0
        (ok, err), = core.run_batch([
            ("delta", "toy", None, Delta.removing(("X", 2, 3)), "RRX",
             "auto", 2, past),
        ])
        assert not ok and isinstance(err, DeadlineExceeded)
        assert core.applied_seq == 2  # the write half landed
        assert core.instances["toy"] == Delta.removing(("X", 2, 3)).apply_to(
            _toy()
        ).commit()

    def test_timeout_zero_is_already_expired(self):
        async def scenario():
            async with AsyncCertaintyServer(num_shards=1) as server:
                await server.register("toy", _toy())
                with pytest.raises(DeadlineExceeded):
                    await server.solve("toy", "RRX", timeout=0.0)
                result = await server.solve("toy", "RRX", timeout=30.0)
                return result, server.stats()

        result, stats = asyncio.run(scenario())
        assert result.answer is True
        assert stats["admission"]["deadline_shed"] == 1

    def test_drain_floor_expired_first_item_dispatches_immediately(self):
        # The satellite-2 pin: a first queue item whose deadline is
        # already past must clamp the assembly window to "now", not feed
        # queue.get() a negative timeout or wait out max_delay (30s here
        # -- without the floor this test times out).
        worker = ShardWorker(0, max_delay=30.0)
        worker.execute([ShardRequest("register", name="toy", db=_toy())])
        worker.start()
        try:
            expired = ShardRequest(
                "solve", name="toy", query="RRX",
                deadline=time.monotonic() - 1.0,
            )
            worker.submit(expired)
            deadline = time.monotonic() + 5.0
            while expired.error is None and time.monotonic() < deadline:
                time.sleep(0.01)
            assert isinstance(expired.error, DeadlineExceeded)
        finally:
            worker.stop()


class TestStopEscalation:
    def test_stop_kills_a_wedged_child(self):
        worker = ShardWorker(0, transport="process")
        worker.execute([ShardRequest("register", name="toy", db=_toy())])
        child = worker.transport.process
        # Wedge the child: SIGSTOP freezes it, so the protocol stop and
        # SIGTERM both pend undelivered; only SIGKILL gets through.
        os.kill(child.pid, signal.SIGSTOP)
        worker.transport.stop_timeout = 0.3
        start = time.monotonic()
        worker.stop()
        elapsed = time.monotonic() - start
        assert elapsed < 5.0
        assert not child.is_alive()

    def test_stop_fails_queued_requests(self):
        worker = ShardWorker(0, transport="process")
        worker.execute([ShardRequest("register", name="toy", db=_toy())])
        stranded = ShardRequest("solve", name="toy", query="RRX")
        worker.submit(stranded)  # never drained: the thread isn't running
        worker.stop()
        assert stranded.error is not None


class TestSnapshotMerge:
    def test_merge_carries_shed_counters(self):
        dead = {"requests": 5, "coalesced": 1, "errors": 2,
                "deadline_shed": 3, "warm_hits": 4, "cold_solves": 1}
        live = {"requests": 1, "coalesced": 0, "errors": 0,
                "deadline_shed": 1, "warm_hits": 0, "cold_solves": 1,
                "residents": 1, "applied_seq": 7}
        merged = merge_snapshots(dead, live)
        assert merged["requests"] == 6
        assert merged["deadline_shed"] == 4
        assert merged["errors"] == 2
        assert merged["residents"] == 1  # point-in-time, not summed
        assert merged["applied_seq"] == 7
