"""Tests for violation witnesses and the Lemma 3 factor forms."""

from hypothesis import given, settings, strategies as st

from repro.classification.conditions import satisfies_c2, satisfies_c3
from repro.classification.witnesses import (
    PairWitness,
    TripleWitness,
    c1_violation,
    c2_violation,
    c3_violation,
    lemma3_factor_witness,
)
from repro.words.factors import is_factor, is_prefix, is_self_join_free
from repro.words.rewind import rewind_at
from repro.words.word import Word

words = st.text(alphabet="RSX", max_size=8).map(Word)


class TestPairWitnesses:
    def test_c1_violation_for_rrx(self):
        witness = c1_violation("RRX")
        assert witness is not None
        rewound = witness.rewound
        assert not is_prefix(Word("RRX"), rewound)

    def test_no_c1_violation_for_rxrx(self):
        assert c1_violation("RXRX") is None

    def test_c3_violation_for_arrx(self):
        witness = c3_violation("ARRX")
        assert witness is not None
        assert not is_factor(Word("ARRX"), witness.rewound)
        # Lemma 19 needs u nonempty; for ARRX u = A.
        assert witness.u == Word("A")

    def test_decomposition_reconstructs_query(self):
        witness = c1_violation("RRX")
        r = Word([witness.relation])
        assert witness.u + r + witness.v + r + witness.w == Word("RRX")

    @settings(max_examples=200, deadline=None)
    @given(words)
    def test_witness_iff_violation(self, q):
        from repro.classification.conditions import satisfies_c1

        assert (c1_violation(q) is None) == satisfies_c1(q)
        assert (c3_violation(q) is None) == satisfies_c3(q)
        assert (c2_violation(q) is None) == satisfies_c2(q)


class TestTripleWitness:
    def test_rxryry(self):
        """Example 3: q3 = ε·RX·RY·RY with v1 != v2 and RY not prefix of RX."""
        witness = c2_violation("RXRYRY")
        assert isinstance(witness, TripleWitness)
        assert witness.u == Word("")
        assert witness.v1 == Word("X")
        assert witness.v2 == Word("Y")
        assert witness.w == Word("Y")

    def test_c3_violations_give_pairs(self):
        witness = c2_violation("RXRXRYRY")
        assert isinstance(witness, PairWitness)

    @settings(max_examples=150, deadline=None)
    @given(words)
    def test_triple_witness_shape(self, q):
        witness = c2_violation(q)
        if not isinstance(witness, TripleWitness):
            return
        r = Word([witness.relation])
        rebuilt = (
            witness.u + r + witness.v1 + r + witness.v2 + r + witness.w
        )
        assert rebuilt == q
        assert witness.v1 != witness.v2
        assert not is_prefix(r + witness.w, r + witness.v1)


class TestLemma3FactorForms:
    def test_shortest_3a(self):
        witness = lemma3_factor_witness("RRSRS")
        assert witness is not None
        assert witness.form == "3a"

    def test_shortest_3b(self):
        witness = lemma3_factor_witness("RSRRR")
        assert witness is not None
        assert witness.form == "3b"

    @settings(max_examples=100, deadline=None)
    @given(words)
    def test_lemma3_equivalence_under_c3(self, q):
        """Under C3: violates C2 iff a Lemma 3(3) factor exists."""
        if not satisfies_c3(q):
            return
        has_factor = lemma3_factor_witness(q) is not None
        assert has_factor == (not satisfies_c2(q))

    @settings(max_examples=100, deadline=None)
    @given(words)
    def test_witness_words_well_formed(self, q):
        witness = lemma3_factor_witness(q)
        if witness is None:
            return
        assert witness.u
        assert is_self_join_free(witness.u + witness.v + witness.w)
        assert is_factor(witness.factor, q)
        if witness.form == "3b":
            assert not witness.v
            assert witness.w
