"""Differential tests: the engine against every applicable solver.

Over randomized instances from :mod:`repro.workloads.generators` and
queries spanning all four Theorem 2 complexity classes, the engine's
``auto`` answer must agree with

* brute-force repair enumeration (ground truth, always applicable);
* the SAT baseline (always applicable);
* the FO rewriting solver (C1 queries);
* the linear-Datalog NL solver (queries with a verified decomposition);
* the Figure 5 fixpoint algorithm (C3 queries; for non-C3 queries its
  "no" answers must still imply the engine's "no" -- Lemma 10 soundness);

and ``solve_batch`` (sequential and ``workers=2``) must agree with
``solve``.
"""

import random

import pytest

from repro.classification.conditions import satisfies_c1, satisfies_c3
from repro.db.repairs import count_repairs
from repro.engine import CertaintyEngine
from repro.solvers.brute_force import certain_answer_brute_force
from repro.solvers.fixpoint import certain_answer_fixpoint
from repro.solvers.fo_solver import certain_answer_fo
from repro.solvers.nl_solver import certain_answer_nl, nl_supported
from repro.solvers.sat_encoding import certain_answer_sat
from repro.workloads.generators import planted_instance, random_instance

#: Two queries per Theorem 2 complexity class.
CLASS_QUERIES = [
    ("RR", "FO"),
    ("RXRX", "FO"),
    ("RRX", "NL-complete"),
    ("RXRY", "NL-complete"),
    ("RXRYRY", "PTIME-complete"),
    ("RXRRR", "PTIME-complete"),
    ("ARRX", "coNP-complete"),
    ("RXRXRYRY", "coNP-complete"),
]

#: Keep brute force affordable in the fast lane.
REPAIR_LIMIT = 3000


def _workload(query, seed, trials):
    """Random plus planted instances, small enough for brute force."""
    rng = random.Random(seed)
    alphabet = sorted(set(query))
    instances = []
    for _ in range(trials):
        instances.append(
            random_instance(rng, 4, rng.randint(2, 10), alphabet, 0.5)
        )
        instances.append(
            planted_instance(
                rng,
                query,
                rng.randint(2, 5),
                n_paths=1,
                n_noise_facts=rng.randint(0, 6),
                conflict_rate=0.5,
            )
        )
    return [db for db in instances if count_repairs(db) <= REPAIR_LIMIT]


class TestEngineAgainstSolvers:
    @pytest.mark.parametrize("query,expected_class", CLASS_QUERIES)
    def test_engine_matches_applicable_methods(self, query, expected_class):
        engine = CertaintyEngine()
        plan = engine.compile(query)
        assert str(plan.complexity) == expected_class
        c1 = satisfies_c1(query)
        c3 = satisfies_c3(query)
        nl_ok = nl_supported(query)
        for db in _workload(query, seed=0xD1FF + sum(map(ord, query)), trials=8):
            result = engine.solve(db, query)
            truth = certain_answer_brute_force(db, query).answer
            assert result.answer == truth, (query, db)
            assert certain_answer_sat(db, query).answer == truth
            if c1:
                assert certain_answer_fo(db, query).answer == truth
            if nl_ok:
                assert certain_answer_nl(db, query).answer == truth
            fixpoint = certain_answer_fixpoint(db, query, require_c3=False)
            if c3:
                assert fixpoint.answer == truth
            elif not fixpoint.answer:
                # Lemma 10: the fixpoint "no" is sound for every query.
                assert not truth

    @pytest.mark.parametrize("query,_cls", CLASS_QUERIES)
    def test_forced_methods_agree(self, query, _cls):
        engine = CertaintyEngine()
        methods = ["sat", "brute_force", "fixpoint" if satisfies_c3(query) else "sat"]
        if satisfies_c1(query):
            methods.append("fo")
        if nl_supported(query):
            methods.append("nl")
        for db in _workload(query, seed=0xF0, trials=3):
            answers = {m: engine.solve(db, query, method=m).answer for m in methods}
            assert len(set(answers.values())) == 1, (query, answers)


class TestBatchEqualsSequential:
    def _pairs(self):
        pairs = []
        for query, _ in CLASS_QUERIES:
            for db in _workload(query, seed=0xBA7C4, trials=2)[:3]:
                pairs.append((db, query))
        return pairs

    def test_solve_batch_matches_solve(self):
        pairs = self._pairs()
        engine = CertaintyEngine()
        sequential = [engine.solve(db, q) for db, q in pairs]
        batched = engine.solve_batch(pairs)
        assert [r.answer for r in batched] == [r.answer for r in sequential]
        assert [r.method for r in batched] == [r.method for r in sequential]

    def test_parallel_batch_matches_sequential(self):
        pairs = self._pairs()
        engine = CertaintyEngine()
        sequential = engine.solve_batch(pairs)
        parallel = engine.solve_batch(pairs, workers=2)
        assert [r.answer for r in parallel] == [r.answer for r in sequential]
        assert [r.method for r in parallel] == [r.method for r in sequential]
        assert engine.stats.parallel_batches == 1

    def test_batch_handles_mixed_query_objects(self):
        from repro.queries.generalized import GeneralizedPathQuery
        from repro.queries.path_query import PathQuery
        from repro.words.word import Word

        rng = random.Random(5)
        db = planted_instance(rng, "RRX", 4, n_paths=1, n_noise_facts=4)
        gq = GeneralizedPathQuery("RR", {1: 0})
        pairs = [
            (db, "RRX"),
            (db, Word("RRX")),
            (db, PathQuery("RRX")),
            (db, gq),
        ]
        engine = CertaintyEngine()
        results = engine.solve_batch(pairs)
        assert results[0].answer == results[1].answer == results[2].answer
        assert results[3].method == "generalized"
        # The three spellings of RRX share one compiled plan.
        assert engine.cache_info()["compiles"] <= 3


@pytest.mark.slow
class TestEngineDifferentialSweep:
    """Larger randomized sweep, excluded from the CI fast lane."""

    @pytest.mark.parametrize("query,_cls", CLASS_QUERIES)
    def test_wide_sweep(self, query, _cls):
        engine = CertaintyEngine()
        for db in _workload(query, seed=0x51EE9, trials=25):
            truth = certain_answer_brute_force(db, query).answer
            assert engine.solve(db, query).answer == truth
