"""Tests for episodes and the repeating lemma (Appendix A)."""

import pytest
from hypothesis import given, strategies as st

from repro.classification.conditions import satisfies_c3
from repro.words.episodes import (
    episodes,
    is_left_repeating,
    is_right_repeating,
    rightmost_left_repeating,
)
from repro.words.factors import is_self_join_free
from repro.words.word import Word

words = st.text(alphabet="RSX", max_size=8).map(Word)


class TestEpisodeDetection:
    def test_simple_episode(self):
        found = episodes("RXR")
        assert len(found) == 1
        episode = found[0]
        assert episode.symbol == "R"
        assert episode.inner == Word("X")
        assert episode.left_context == Word("")
        assert episode.right_context == Word("")
        assert episode.factor == Word("RXR")

    def test_consecutive_occurrences_only(self):
        # R at 0, 2, 4 and X at 1, 3: episodes pair consecutive
        # occurrences only, so (0, 4) is absent.
        spans = [(e.start, e.end) for e in episodes("RXRXR")]
        assert spans == [(0, 2), (1, 3), (2, 4)]

    def test_no_episodes_in_self_join_free(self):
        assert episodes("RSX") == []

    def test_paper_example_amaa(self):
        """The word AMAA·MAAMA·MAAMAAMAB from Appendix A has the episodes
        e1 = MAAM (left-repeating) and e2 = MAAM... as described."""
        q = Word("AMAAMAAMAMAAMAAMAB")
        found = episodes(q)
        assert found  # the word is full of episodes
        for episode in found:
            assert episode.symbol not in episode.inner.symbols


class TestRepeating:
    def test_right_repeating(self):
        # q = ℓ RuR r with R=R, u=X, r=XR: r must be a prefix of (XR)^|r|.
        q = Word("RXRXR")
        first = episodes(q)[0]
        assert is_right_repeating(first)

    def test_left_repeating(self):
        q = Word("RXRXR")
        last = episodes(q)[-1]
        assert is_left_repeating(last)

    def test_not_repeating(self):
        # RXRY: episode RXR followed by Y, not a prefix of (XR)*.
        episode = episodes("RXRY")[0]
        assert not is_right_repeating(episode)
        assert is_left_repeating(episode)  # empty left context

    def test_rightmost_left_repeating(self):
        episode = rightmost_left_repeating("RXRXR")
        assert (episode.start, episode.end) == (2, 4)

    def test_rightmost_raises_without_candidates(self):
        with pytest.raises(ValueError):
            rightmost_left_repeating("RSX")


class TestRepeatingLemma:
    @given(words)
    def test_lemma23(self, q):
        """Lemma 23: under C3, every episode is left- or right-repeating."""
        if not satisfies_c3(q):
            return
        for episode in episodes(q):
            assert is_left_repeating(episode) or is_right_repeating(episode)

    @given(words)
    def test_lemma24(self, q):
        """Lemma 24: under C3, the right-most left-repeating episode LℓL
        has Lℓ self-join-free."""
        if not satisfies_c3(q):
            return
        candidates = [e for e in episodes(q) if is_left_repeating(e)]
        if not candidates:
            return
        episode = rightmost_left_repeating(q)
        prefix = Word([episode.symbol]) + episode.inner
        assert is_self_join_free(prefix)
